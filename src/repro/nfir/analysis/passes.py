"""The built-in offload-lint rules (``CL001``-``CL013``).

Each rule flags one class of construct the paper identifies as an
offload hazard: opcodes the NFP micro-engines have no native support
for, loops the NIC compiler cannot bound, calls the inliner cannot
remove, state that is dead or races under scale-out, and state the
memory hierarchy cannot hold.  Severities follow one convention:

* ``error`` — the module cannot be ported at all (recursion, state
  larger than every region);
* ``warning`` — portable but with a known performance or correctness
  hazard the developer should resolve;
* ``note`` — advisory (constructs the compiler silently expands).

The second-generation rules (``CL009``-``CL013``) are *proof* rules:
they run the abstract-interpretation engine
(:mod:`repro.nfir.analysis.absint` /
:mod:`repro.nfir.analysis.footprint`) and emit notes that *downgrade*
the first-generation syntactic warnings they subsume (see
:func:`repro.nfir.analysis.lint.apply_downgrades`).
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Set, Tuple

from repro.nfir.analysis.dataflow import maybe_uninitialized_loads
from repro.nfir.analysis.footprint import (
    API_READS as _API_READS,
    API_WRITES as _API_WRITES,
    read_only_globals,
)
from repro.nfir.analysis.lint import (
    Diagnostic,
    LintContext,
    LintPass,
    PassRegistry,
    SEVERITY_ERROR,
    SEVERITY_NOTE,
    SEVERITY_WARNING,
)
from repro.nfir.function import Function, GlobalVariable, Module
from repro.nfir.instructions import (
    BinaryOp,
    Call,
    CondBr,
    ICmp,
    Instruction,
    Load,
    Phi,
    Select,
    Store,
    CALL_KIND_INTERNAL,
)
from repro.nfir.types import IntType
from repro.nfir.values import Argument, Constant, Value


def _instr_ref(instr: Instruction) -> str:
    return instr.ref() if instr.name is not None else instr.opcode


def _loc(instr: Instruction, function: Function) -> Dict[str, Optional[str]]:
    return {
        "function": function.name,
        "block": instr.parent.name if instr.parent is not None else None,
        "instruction": _instr_ref(instr),
    }


class NicUnsupportedOpPass(LintPass):
    """Opcodes with no native NFP micro-engine support (the construct
    class the DPU study catalogs as a silent port killer): signed
    divide/modulo, 64-bit multiplies, and software-divide expansions."""

    code = "CL001"
    name = "nic-unsupported-op"
    description = (
        "signed division, wide multiply, or software-divide expansion"
    )

    def run(self, module: Module, ctx: LintContext) -> Iterable[Diagnostic]:
        for function in module.functions.values():
            for instr in function.instructions():
                if not isinstance(instr, BinaryOp):
                    continue
                wide = (
                    isinstance(instr.type, IntType) and instr.type.bits > 32
                )
                if instr.opcode in ("sdiv", "srem"):
                    yield self.diag(
                        SEVERITY_WARNING,
                        f"{instr.opcode} has no NFP equivalent; the NIC"
                        " compiler substitutes an unsigned software"
                        " divide with different semantics for negative"
                        " operands",
                        **_loc(instr, function),
                    )
                elif instr.opcode == "mul" and wide:
                    yield self.diag(
                        SEVERITY_WARNING,
                        "64-bit multiply expands to a 10-step mul_step"
                        " sequence on the micro-engine",
                        **_loc(instr, function),
                    )
                elif instr.opcode in ("udiv", "urem"):
                    rhs = instr.rhs
                    by_pow2 = (
                        isinstance(rhs, Constant)
                        and rhs.value > 0
                        and rhs.value & (rhs.value - 1) == 0
                    )
                    if not by_pow2:
                        yield self.diag(
                            SEVERITY_NOTE,
                            f"{instr.opcode} by a non-power-of-two"
                            " expands to a ~22-instruction software"
                            " divide",
                            **_loc(instr, function),
                        )


class UnboundedLoopPass(LintPass):
    """Loops the NIC compiler cannot statically bound.  Recognizes the
    counted-loop idiom the frontend emits (counter slot or phi stepped
    by a loop-constant, compared against a loop-invariant bound); any
    other loop is flagged, and a loop with no exiting edge at all is an
    error (it can never terminate)."""

    code = "CL002"
    name = "unbounded-loop"
    description = "loop without a statically bounded induction variable"

    def run(self, module: Module, ctx: LintContext) -> Iterable[Diagnostic]:
        from repro.nfir.cfg import natural_loops

        for function in module.functions.values():
            tree = ctx.domtree(function)
            for header, body in natural_loops(function).items():
                exits = self._exit_conditions(function, body)
                if not exits:
                    yield self.diag(
                        SEVERITY_ERROR,
                        "loop has no exiting edge; it can never"
                        " terminate",
                        function=function.name,
                        block=header,
                    )
                    continue
                if not any(
                    self._is_counted_exit(cond, body, tree)
                    for cond in exits
                ):
                    yield self.diag(
                        SEVERITY_WARNING,
                        "no exit condition compares a stepped counter"
                        " against a loop-invariant bound; trip count"
                        " is statically unbounded",
                        function=function.name,
                        block=header,
                    )

    @staticmethod
    def _exit_conditions(
        function: Function, body: Set[str]
    ) -> List[Tuple[Instruction, Value]]:
        """(terminator, condition) of every loop block that can leave
        the loop."""
        out = []
        for block in function.blocks:
            if block.name not in body:
                continue
            term = block.terminator
            if not isinstance(term, CondBr):
                continue
            if any(s.name not in body for s in term.successors()):
                out.append((term, term.cond))
        return out

    def _is_counted_exit(
        self,
        exit_: Tuple[Instruction, Value],
        body: Set[str],
        tree,
    ) -> bool:
        _, cond = exit_
        if not isinstance(cond, ICmp):
            return False
        for counter, bound in (
            (cond.lhs, cond.rhs), (cond.rhs, cond.lhs)
        ):
            if self._loop_invariant(bound, body) and self._is_stepped(
                counter, body
            ):
                return True
        return False

    @staticmethod
    def _loop_invariant(value: Value, body: Set[str]) -> bool:
        if isinstance(value, (Constant, Argument)):
            return True
        if isinstance(value, Instruction):
            return (
                value.parent is not None
                and value.parent.name not in body
            )
        return True  # globals and other non-instruction values

    @staticmethod
    def _is_stepped(counter: Value, body: Set[str]) -> bool:
        """Whether ``counter`` advances by a constant each iteration:
        either a load of a slot whose in-loop stores are
        ``slot <- load(slot) +/- const``, or a header phi whose in-loop
        incoming is ``phi +/- const``."""
        from repro.nfir.analysis.dataflow import slot_of

        def is_step(value: Value, base_load_slot=None, base_phi=None) -> bool:
            if not isinstance(value, BinaryOp):
                return False
            if value.opcode not in ("add", "sub"):
                return False
            operands = [value.lhs, value.rhs]
            if not any(isinstance(op, Constant) for op in operands):
                return False
            other = value.rhs if isinstance(value.lhs, Constant) else value.lhs
            if base_phi is not None:
                return other is base_phi
            if isinstance(other, Load):
                return slot_of(other.ptr) is base_load_slot
            return False

        if isinstance(counter, Load):
            slot = slot_of(counter.ptr)
            if slot is None or slot.parent is None:
                return False
            function = slot.parent.parent
            if function is None:
                return False
            in_loop_stores = [
                i
                for i in function.instructions()
                if isinstance(i, Store)
                and slot_of(i.ptr) is slot
                and i.parent is not None
                and i.parent.name in body
            ]
            return bool(in_loop_stores) and all(
                is_step(s.value, base_load_slot=slot) for s in in_loop_stores
            )
        if isinstance(counter, Phi):
            steps = [
                value
                for value, pred in counter.incomings
                if pred.name in body
            ]
            return bool(steps) and all(
                is_step(v, base_phi=counter) for v in steps
            )
        return False


class InternalCallPass(LintPass):
    """Internal calls that survive (or defeat) inlining: recursion and
    calls to functions the module does not define are errors; other
    internal calls are advisory (the inliner removes them before
    porting)."""

    code = "CL003"
    name = "non-inlinable-call"
    description = "recursive or unresolvable internal call"

    def run(self, module: Module, ctx: LintContext) -> Iterable[Diagnostic]:
        edges: Dict[str, Set[str]] = {name: set() for name in module.functions}
        for function in module.functions.values():
            for instr in function.instructions():
                if not isinstance(instr, Call):
                    continue
                if instr.kind != CALL_KIND_INTERNAL:
                    continue
                if instr.callee not in module.functions:
                    yield self.diag(
                        SEVERITY_ERROR,
                        f"internal call to undefined function"
                        f" @{instr.callee}; the inliner cannot resolve"
                        " it",
                        **_loc(instr, function),
                    )
                    continue
                edges[function.name].add(instr.callee)
                yield self.diag(
                    SEVERITY_NOTE,
                    f"internal call to @{instr.callee} must be inlined"
                    " before porting",
                    **_loc(instr, function),
                )
        for cycle_fn in sorted(self._on_cycle(edges)):
            yield self.diag(
                SEVERITY_ERROR,
                f"@{cycle_fn} participates in a recursive call cycle;"
                " the inliner cannot eliminate it and the NIC has no"
                " call stack",
                function=cycle_fn,
            )

    @staticmethod
    def _on_cycle(edges: Dict[str, Set[str]]) -> Set[str]:
        """Functions on a cycle of the internal call graph (iterative
        color DFS)."""
        on_cycle: Set[str] = set()
        color: Dict[str, int] = {}  # 1 = in progress, 2 = done
        for root in edges:
            if color.get(root):
                continue
            stack: List[Tuple[str, Iterable[str]]] = [(root, iter(edges[root]))]
            color[root] = 1
            path = [root]
            while stack:
                node, it = stack[-1]
                advanced = False
                for succ in it:
                    if color.get(succ) == 1:
                        # Everything from succ to the top of the path.
                        idx = path.index(succ)
                        on_cycle.update(path[idx:])
                    elif not color.get(succ):
                        color[succ] = 1
                        stack.append((succ, iter(edges[succ])))
                        path.append(succ)
                        advanced = True
                        break
                if not advanced:
                    color[node] = 2
                    stack.pop()
                    path.pop()
        return on_cycle


class DeadStatePass(LintPass):
    """Stateful globals the NF never uses — or writes but never reads.
    Dead state wastes the scarce fast regions the placement ILP
    allocates; write-only state is usually a porting bug."""

    code = "CL004"
    name = "dead-state"
    description = "stateful global that is dead or write-only"

    def run(self, module: Module, ctx: LintContext) -> Iterable[Diagnostic]:
        from repro.nfir.annotate import trace_pointer_root

        reads: Set[str] = set()
        writes: Set[str] = set()
        for function in module.functions.values():
            for instr in function.instructions():
                if isinstance(instr, Load):
                    root = trace_pointer_root(instr.ptr)
                    if isinstance(root, GlobalVariable):
                        reads.add(root.name)
                elif isinstance(instr, Store):
                    root = trace_pointer_root(instr.ptr)
                    if isinstance(root, GlobalVariable):
                        writes.add(root.name)
                elif isinstance(instr, Call):
                    for arg in instr.args:
                        root = trace_pointer_root(arg)
                        if not isinstance(root, GlobalVariable):
                            continue
                        if instr.callee in _API_READS:
                            reads.add(root.name)
                        elif instr.callee in _API_WRITES:
                            writes.add(root.name)
                        else:
                            reads.add(root.name)
                            writes.add(root.name)
        for name in module.globals:
            if name not in reads and name not in writes:
                yield self.diag(
                    SEVERITY_WARNING,
                    f"stateful global @{name} is never accessed; it"
                    " still consumes NIC memory capacity",
                )
            elif name not in reads:
                yield self.diag(
                    SEVERITY_WARNING,
                    f"stateful global @{name} is written but never"
                    " read (write-only state)",
                )


class UninitializedLoadPass(LintPass):
    """Loads of stack slots some entry path never stored — undefined
    values on the host, stale transfer registers on the NIC."""

    code = "CL005"
    name = "uninitialized-load"
    description = "load of a stack slot with an uninitialized path"

    def run(self, module: Module, ctx: LintContext) -> Iterable[Diagnostic]:
        for function in module.functions.values():
            for load, slot in maybe_uninitialized_loads(function):
                yield self.diag(
                    SEVERITY_WARNING,
                    f"load of {slot.ref()} may execute before any"
                    " store to it",
                    **_loc(load, function),
                )


class UnreachableBlockPass(LintPass):
    """Blocks no path from the entry reaches.  Dead code inflates the
    NIC instruction store and skews per-block prediction."""

    code = "CL006"
    name = "unreachable-block"
    description = "basic block unreachable from the entry"

    def run(self, module: Module, ctx: LintContext) -> Iterable[Diagnostic]:
        for function in module.functions.values():
            tree = ctx.domtree(function)
            for block in function.blocks:
                if block.name not in tree.reachable:
                    yield self.diag(
                        SEVERITY_WARNING,
                        "block is unreachable from the entry",
                        function=function.name,
                        block=block.name,
                    )


class RaceCandidatePass(LintPass):
    """Stateful read-modify-write sequences with no framework
    mediation: under the scale-out insight (Section 4.2) the NF runs
    on tens of cores, and a load -> compute -> store on shared state
    loses updates unless the framework arbitrates it."""

    code = "CL007"
    name = "race-candidate"
    description = "non-atomic read-modify-write of shared state"

    #: operand-DAG nodes examined per store before giving up.
    MAX_WALK = 200

    def run(self, module: Module, ctx: LintContext) -> Iterable[Diagnostic]:
        from repro.nfir.annotate import build_alloca_points_to, pointer_target

        # A load of a never-written lookup table cannot be the read
        # half of a racy read-modify-write: every replica observes the
        # same bytes forever.  Computing the read-only set once keeps
        # name-collapsed pointer targets (``stateful:<indirect>``)
        # from matching loads of unrelated constant tables.
        read_only = read_only_globals(module)
        for function in module.functions.values():
            alloca_map = build_alloca_points_to(function)
            for instr in function.instructions():
                if not isinstance(instr, Store):
                    continue
                target = pointer_target(instr.ptr, alloca_map)
                if not target.startswith("stateful"):
                    continue
                if self._depends_on_load_of(
                    instr.value, target, alloca_map, read_only
                ):
                    state = target.partition(":")[2] or "<indirect>"
                    yield self.diag(
                        SEVERITY_WARNING,
                        f"read-modify-write of shared state @{state} is"
                        " not atomic; concurrent cores (scale-out,"
                        " Section 4.2) can lose updates",
                        data={"global": state},
                        **_loc(instr, function),
                    )

    def _depends_on_load_of(
        self,
        value: Value,
        target: str,
        alloca_map,
        read_only: Optional[Set[str]] = None,
    ) -> bool:
        from repro.nfir.annotate import pointer_target, trace_pointer_root

        seen: Set[int] = set()
        stack = [value]
        while stack and len(seen) < self.MAX_WALK:
            node = stack.pop()
            if id(node) in seen:
                continue
            seen.add(id(node))
            if isinstance(node, Load):
                if pointer_target(node.ptr, alloca_map) == target:
                    root = trace_pointer_root(node.ptr)
                    if (
                        read_only
                        and isinstance(root, GlobalVariable)
                        and root.name in read_only
                    ):
                        continue  # read-only table: no lost update
                    return True
                continue  # don't walk through memory
            if isinstance(node, Instruction):
                stack.extend(node.operands)
        return False


class StateCapacityPass(LintPass):
    """State the memory hierarchy cannot hold or coalesce: a global
    larger than every placeable region is unportable; one larger than
    the on-chip SRAM tiers is stuck in DRAM; sizes that break 4-byte
    alignment defeat the Section 4.4 coalescing packs."""

    code = "CL008"
    name = "state-capacity"
    description = "global state too large or misaligned for the NIC"

    def run(self, module: Module, ctx: LintContext) -> Iterable[Diagnostic]:
        # Capacity thresholds come from the *active* target's declared
        # hierarchy — a global that fits the NFP's 4MB IMEM may not fit
        # a DPU's 64KB scratch (and vice versa).
        hierarchy = ctx.target.hierarchy()
        regions = hierarchy.placeable
        largest = max(r.capacity_bytes for r in regions)
        sram = max(r.capacity_bytes for r in regions[:-1])
        total_capacity = sum(r.capacity_bytes for r in regions)
        for name, g in module.globals.items():
            if g.size_bytes > largest:
                yield self.diag(
                    SEVERITY_ERROR,
                    f"@{name} is {g.size_bytes} bytes; no NIC memory"
                    f" region can hold it (largest is {largest})",
                    data={"global": name},
                )
            elif g.size_bytes > sram:
                yield self.diag(
                    SEVERITY_WARNING,
                    f"@{name} is {g.size_bytes} bytes; it exceeds every"
                    " on-chip SRAM tier and is pinned to EMEM (DRAM"
                    " latency on every access)",
                    data={"global": name},
                )
            if g.size_bytes % 4 != 0:
                yield self.diag(
                    SEVERITY_NOTE,
                    f"@{name} is {g.size_bytes} bytes (not 4-byte"
                    " aligned); adjacent packing for coalescing"
                    " (Section 4.4) needs padding",
                    data={"global": name},
                )
        total = module.total_state_bytes()
        if total > total_capacity:
            yield self.diag(
                SEVERITY_ERROR,
                f"total state ({total} bytes) exceeds the combined"
                f" placeable capacity ({total_capacity} bytes); the"
                " placement ILP is infeasible",
            )


class BoundedLoopProofPass(LintPass):
    """Loops the interval engine proves bounded even though the
    syntactic counted-loop check (CL002) cannot: the proof note
    downgrades the matching CL002 warning, so only *truly* unbounded
    loops keep warning severity."""

    code = "CL009"
    name = "bounded-loop-proof"
    description = "interval analysis proves a worst-case trip count"

    def run(self, module: Module, ctx: LintContext) -> Iterable[Diagnostic]:
        from repro.nfir.cfg import natural_loops

        syntactic = UnboundedLoopPass()
        for function in module.functions.values():
            loops = natural_loops(function)
            if not loops:
                continue
            tree = ctx.domtree(function)
            bounds = ctx.trip_bounds(function)
            for header, body in loops.items():
                bound = bounds.get(header)
                if bound is None:
                    continue
                exits = syntactic._exit_conditions(function, body)
                if exits and any(
                    syntactic._is_counted_exit(cond, body, tree)
                    for cond in exits
                ):
                    continue  # CL002 already accepts this loop
                yield self.diag(
                    SEVERITY_NOTE,
                    f"loop is provably bounded: at most"
                    f" {bound.trip_max} iteration(s) ({bound.reason})",
                    function=function.name,
                    block=header,
                    data={
                        "downgrades": "CL002",
                        "trip_max": bound.trip_max,
                        "counter": bound.counter,
                    },
                )


class DeadComputePass(LintPass):
    """Branches the interval engine proves one-sided, and non-trivial
    compute that always produces the same constant.  Dead branches
    carry a machine-applicable fix (fold to an unconditional branch);
    constant compute is advisory (the NIC compiler folds it, but the
    source is clearer without it)."""

    code = "CL010"
    name = "dead-branch"
    description = "provably one-sided branch or constant-foldable compute"

    def run(self, module: Module, ctx: LintContext) -> Iterable[Diagnostic]:
        for function in module.functions.values():
            tree = ctx.domtree(function)
            analysis = ctx.intervals(function)
            for block in function.blocks:
                if block.name not in tree.reachable:
                    continue  # CL006 already flags unreachable blocks
                intervals = analysis.eval_block(block)
                term = block.terminator
                if isinstance(term, CondBr) and not isinstance(
                    term.cond, Constant
                ):
                    iv = intervals.get(term.cond)
                    if iv is not None and iv.is_constant:
                        taken = (
                            term.if_true if iv.lo else term.if_false
                        )
                        dead = (
                            term.if_false if iv.lo else term.if_true
                        )
                        yield self.diag(
                            SEVERITY_WARNING,
                            f"condition is always {iv.lo}; the branch"
                            f" to %{dead.name} can never be taken",
                            function=function.name,
                            block=block.name,
                            instruction=_instr_ref(term),
                            data={
                                "dead_block": dead.name,
                                "fix": {
                                    "description": (
                                        "fold to an unconditional"
                                        f" branch to %{taken.name}"
                                    ),
                                    "replacement": (
                                        f"br label %{taken.name}"
                                    ),
                                },
                            },
                        )
                for instr in block.instructions:
                    if not isinstance(instr, (BinaryOp, ICmp, Select)):
                        continue
                    if all(
                        isinstance(op, Constant) for op in instr.operands
                    ):
                        continue  # trivial folds are frontend artifacts
                    iv = intervals.get(instr)
                    if iv is not None and iv.is_constant:
                        yield self.diag(
                            SEVERITY_NOTE,
                            f"always computes {iv.lo}; the compute is"
                            " constant-foldable",
                            data={"constant": iv.lo},
                            **_loc(instr, function),
                        )


class StateBoundProofPass(LintPass):
    """Per-global worst-case *resident* size from the footprint domain,
    checked against the active target's memory regions.  When the
    proven bound fits a tier the declared capacity does not, the note
    downgrades CL008's declaration-based verdict."""

    code = "CL011"
    name = "state-bound-proof"
    description = "proven resident state bound vs target memory regions"

    @staticmethod
    def _tier(size: int, largest: int, sram: int) -> int:
        """0 = fits SRAM, 1 = DRAM only, 2 = fits nowhere."""
        if size > largest:
            return 2
        if size > sram:
            return 1
        return 0

    def run(self, module: Module, ctx: LintContext) -> Iterable[Diagnostic]:
        regions = ctx.target.hierarchy().placeable
        largest = max(r.capacity_bytes for r in regions)
        sram = max(r.capacity_bytes for r in regions[:-1])
        footprints = ctx.footprints()
        for name in sorted(footprints):
            fp = footprints[name]
            if not fp.accessed:
                continue  # CL004's business
            resident = fp.resident_bytes
            if resident > largest:
                yield self.diag(
                    SEVERITY_ERROR,
                    f"@{name}'s proven resident bound ({resident}"
                    f" bytes) exceeds every memory region of"
                    f" {ctx.target.name} (largest is {largest})",
                    data={
                        "global": name,
                        "resident_bytes": resident,
                    },
                )
                continue
            if not fp.resident_proven:
                continue
            region = next(
                r for r in regions if resident <= r.capacity_bytes
            )
            data: Dict[str, object] = {
                "global": name,
                "resident_bytes": resident,
                "region": region.name,
            }
            declared_tier = self._tier(fp.declared_bytes, largest, sram)
            if self._tier(resident, largest, sram) < declared_tier:
                data["downgrades"] = "CL008"
            yield self.diag(
                SEVERITY_NOTE,
                f"@{name} declares {fp.declared_bytes} bytes but"
                f" provably touches at most {resident}; the resident"
                f" set fits {region.name}",
                data=data,
            )


class ReadOnlyStatePass(LintPass):
    """Shared state the footprint domain proves read-only: replicas
    cannot diverge, so the scale-out race analysis (CL007) does not
    apply — the exoneration note downgrades matching CL007 warnings
    and carries the replicate-per-core fix."""

    code = "CL012"
    name = "read-only-state"
    description = "shared state is provably read-only (race-free)"

    def run(self, module: Module, ctx: LintContext) -> Iterable[Diagnostic]:
        footprints = ctx.footprints()
        for name in sorted(footprints):
            fp = footprints[name]
            if not fp.read_only:
                continue
            yield self.diag(
                SEVERITY_NOTE,
                f"@{name} is read-only ({fp.n_reads} read(s), no"
                " writes): scale-out replicas cannot diverge and no"
                " arbitration is needed",
                data={
                    "global": name,
                    "downgrades": "CL007",
                    "n_reads": fp.n_reads,
                    "keying": fp.keying,
                    "fix": {
                        "description": (
                            f"replicate @{name} per core; read-only"
                            " state needs no arbitration"
                        ),
                    },
                },
            )


class HostTransferCostPass(LintPass):
    """Estimated host-transfer cost at each natural *cut point* of the
    packet handler (join blocks outside every loop): the bytes live
    across the cut — SSA values plus initialized stack slots still
    read below it — priced with the active target's DMA/wire model.
    These are the candidate offload boundaries ROADMAP item 2 asks
    partial-offload planning to weigh."""

    code = "CL013"
    name = "host-transfer-cost"
    description = "live-state transfer cost at handler cut points"

    def run(self, module: Module, ctx: LintContext) -> Iterable[Diagnostic]:
        from repro.nfir.analysis.dataflow import (
            initialized_slots,
            liveness,
            slot_of,
        )
        from repro.nfir.cfg import natural_loops

        try:
            function = module.handler
        except KeyError:
            return
        tree = ctx.domtree(function)
        n_preds: Dict[str, int] = {}
        for block in function.blocks:
            for succ in block.successors():
                n_preds[succ.name] = n_preds.get(succ.name, 0) + 1
        in_loop: Set[str] = set()
        for body in natural_loops(function).values():
            in_loop |= body
        live = liveness(function)
        init = initialized_slots(function)
        for block in function.blocks:
            name = block.name
            if (
                name not in tree.reachable
                or name in in_loop
                or n_preds.get(name, 0) < 2
            ):
                continue
            n_bytes = sum(
                v.type.size_bytes()
                for v in live.in_sets.get(name, frozenset())
                if isinstance(v.type, IntType)
            )
            dominated = {
                b.name for b in function.blocks
                if tree.dominates(name, b.name)
            }
            loaded_below: Set[int] = set()
            for b in function.blocks:
                if b.name not in dominated:
                    continue
                for instr in b.instructions:
                    if isinstance(instr, Load):
                        slot = slot_of(instr.ptr)
                        if slot is not None:
                            loaded_below.add(id(slot))
            for slot in init.in_sets.get(name, frozenset()):
                if id(slot) in loaded_below:
                    n_bytes += slot.allocated_type.size_bytes()
            if n_bytes == 0:
                continue
            cycles = ctx.target.host_transfer_cycles(n_bytes)
            yield self.diag(
                SEVERITY_NOTE,
                f"cutting the offload at %{name} transfers {n_bytes}"
                f" live byte(s) to the host (~{cycles:.0f} cycles on"
                f" {ctx.target.name})",
                function=function.name,
                block=name,
                data={
                    "cut_block": name,
                    "live_bytes": n_bytes,
                    "transfer_cycles": round(cycles, 1),
                },
            )


BUILTIN_PASSES = (
    NicUnsupportedOpPass,
    UnboundedLoopPass,
    InternalCallPass,
    DeadStatePass,
    UninitializedLoadPass,
    UnreachableBlockPass,
    RaceCandidatePass,
    StateCapacityPass,
    BoundedLoopProofPass,
    DeadComputePass,
    StateBoundProofPass,
    ReadOnlyStatePass,
    HostTransferCostPass,
)


def default_registry() -> PassRegistry:
    """A fresh registry holding every built-in rule."""
    return PassRegistry([cls() for cls in BUILTIN_PASSES])
