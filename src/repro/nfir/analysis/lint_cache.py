"""Incremental lint: content-addressed caching of lint reports.

A lint run is a pure function of (module IR, rule set, target): the
cache key hashes the printed IR (the same canonical text ``clara ir``
emits), the suppression directives (``clara-disable`` metadata is not
part of the printed form), the selected rule codes, the target
fingerprint, and the report schema.  Warm re-lints of an unchanged
corpus then cost one hash + one pickle load per element instead of a
full abstract-interpretation pass — the property ``clara serve`` and
CI lean on.

Entries live in the same :class:`~repro.core.artifacts.ArtifactCache`
directory as trained model states (``$REPRO_CLARA_CACHE`` overrides
the location), and reports round-trip through their schema-versioned
dict form, so a schema bump naturally misses.
"""

from __future__ import annotations

import hashlib
import json
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.nfir.analysis.lint import (
    LINT_REPORT_SCHEMA,
    LintReport,
    SUPPRESS_META_KEY,
)
from repro.nfir.function import Module

__all__ = ["LINT_CACHE_VERSION", "lint_cache_key", "cached_lint_run"]

#: Bump when rule *implementations* change in a way that alters
#: diagnostics for unchanged IR — the key cannot see code changes.
LINT_CACHE_VERSION = 1


def _suppression_directives(module: Module) -> List[List[str]]:
    """Every ``clara-disable`` directive with its attachment point —
    printed IR does not carry metadata, so the key must."""

    def fmt(raw: object) -> str:
        if isinstance(raw, str):
            return raw
        return ",".join(str(r) for r in raw)  # type: ignore[union-attr]

    out: List[List[str]] = []
    if SUPPRESS_META_KEY in module.meta:
        out.append(["module", fmt(module.meta[SUPPRESS_META_KEY])])
    for function in module.functions.values():
        for block in function.blocks:
            for i, instr in enumerate(block.instructions):
                if SUPPRESS_META_KEY in instr.meta:
                    out.append([
                        f"{function.name}:{block.name}:{i}",
                        fmt(instr.meta[SUPPRESS_META_KEY]),
                    ])
    return out


def lint_cache_key(
    module: Module,
    rule_codes: Sequence[str],
    target: Any = None,
) -> str:
    """The content hash a lint report is stored under."""
    from repro.nfir.printer import print_module
    from repro.nic.targets import resolve_target, target_fingerprint

    payload = {
        "kind": "lint_report",
        "cache_version": LINT_CACHE_VERSION,
        "report_schema": LINT_REPORT_SCHEMA,
        "ir": print_module(module),
        "suppressions": _suppression_directives(module),
        "rules": sorted(rule_codes),
        "target": target_fingerprint(resolve_target(target)),
    }
    blob = json.dumps(payload, sort_keys=True).encode("utf-8")
    return "lint-" + hashlib.sha256(blob).hexdigest()[:32]


def cached_lint_run(
    module: Module,
    registry: Any,
    cache: Any,
    only: Optional[Sequence[str]] = None,
    disable: Optional[Sequence[str]] = None,
    target: Any = None,
) -> Tuple[LintReport, str]:
    """Run (or replay) one module's lint through an artifact cache.

    Returns ``(report, outcome)`` with outcome ``"hit"`` or
    ``"miss"``; a ``None`` cache degrades to a plain run (outcome
    ``"off"``).
    """
    if cache is None:
        return (
            registry.run(module, only=only, disable=disable, target=target),
            "off",
        )
    codes = [p.code for p in registry.select(only=only, disable=disable)]
    key = lint_cache_key(module, codes, target=target)
    state = cache.load(key)
    if state is not None:
        try:
            return LintReport.from_dict(state["report"]), "hit"
        except (KeyError, ValueError, TypeError):
            pass  # fall through to a fresh run on malformed entries
    report = registry.run(module, only=only, disable=disable, target=target)
    cache.store(key, {"report": report.to_dict()})
    return report, "miss"
