"""Static analysis over NFIR: dataflow infrastructure and offload lint.

Clara's premise (paper Sections 3.1, 4.3-4.4) is that offloading
insights are derivable *statically* from the NF's IR.  This package is
the reusable machinery behind that:

* :mod:`repro.nfir.analysis.dominance` — dominator tree and dominance
  frontier (Cooper-Harvey-Kennedy), shared by the verifier's SSA
  checks and the loop analyses in :mod:`repro.nfir.cfg`;
* :mod:`repro.nfir.analysis.dataflow` — a generic forward/backward
  worklist solver plus def-use chains, liveness, reaching stores, and
  definitely-initialized slots;
* :mod:`repro.nfir.analysis.absint` — abstract interpretation on the
  worklist solver: the unsigned interval (value-range) domain with
  branch refinement and widening, plus proven loop trip-count bounds;
* :mod:`repro.nfir.analysis.footprint` — the state-footprint domain:
  per-global access mix, per-flow vs cross-flow keying, and proven
  worst-case resident bytes;
* :mod:`repro.nfir.analysis.lint` — the pass framework: stable
  ``CL###`` rule codes, :class:`Diagnostic`, :class:`PassRegistry`,
  cross-rule downgrades, ``clara-disable`` suppressions, and
  schema-versioned :class:`LintReport` with JSON/SARIF output;
* :mod:`repro.nfir.analysis.passes` — the built-in offload rules:
  the syntactic generation (NIC-unsupported opcodes, unbounded loops,
  recursion, dead state, uninitialized loads, unreachable blocks,
  scale-out race candidates, oversized/misaligned state) and the
  proof generation (bounded-loop, dead-branch, state-bound, read-only
  state, host-transfer cost);
* :mod:`repro.nfir.analysis.baseline` — accepted-finding fingerprints
  behind ``clara lint --baseline``;
* :mod:`repro.nfir.analysis.lint_cache` — content-addressed
  incremental lint through the artifact cache.

``python -m repro.nfir.analysis --self-check`` exercises the whole
stack against built-in fixtures (used as a CI smoke test).
"""

from repro.nfir.analysis.dataflow import (
    DataflowProblem,
    DataflowResult,
    DefUseChains,
    initialized_slots,
    liveness,
    maybe_uninitialized_loads,
    reaching_stores,
    slot_of,
    solve,
    stores_reaching,
)
from repro.nfir.analysis.absint import (
    Interval,
    IntervalAnalysis,
    LoopBound,
    loop_trip_bounds,
)
from repro.nfir.analysis.baseline import (
    LintBaseline,
    apply_baseline,
    baseline_from_reports,
    diagnostic_fingerprint,
)
from repro.nfir.analysis.dominance import DominatorTree, block_predecessors
from repro.nfir.analysis.footprint import (
    StateFootprint,
    module_footprints,
    read_only_globals,
)
from repro.nfir.analysis.lint import (
    Diagnostic,
    LINT_REPORT_SCHEMA,
    LintContext,
    LintPass,
    LintReport,
    PassRegistry,
    SEVERITIES,
    SEVERITY_ERROR,
    SEVERITY_NOTE,
    SEVERITY_WARNING,
    lint_module,
    sarif_report,
    severity_rank,
)
from repro.nfir.analysis.passes import BUILTIN_PASSES, default_registry

__all__ = [
    "BUILTIN_PASSES",
    "DataflowProblem",
    "DataflowResult",
    "DefUseChains",
    "Diagnostic",
    "DominatorTree",
    "Interval",
    "IntervalAnalysis",
    "LINT_REPORT_SCHEMA",
    "LintBaseline",
    "LintContext",
    "LintPass",
    "LintReport",
    "LoopBound",
    "PassRegistry",
    "SEVERITIES",
    "SEVERITY_ERROR",
    "SEVERITY_NOTE",
    "SEVERITY_WARNING",
    "StateFootprint",
    "apply_baseline",
    "baseline_from_reports",
    "block_predecessors",
    "default_registry",
    "diagnostic_fingerprint",
    "initialized_slots",
    "lint_module",
    "liveness",
    "loop_trip_bounds",
    "maybe_uninitialized_loads",
    "module_footprints",
    "read_only_globals",
    "reaching_stores",
    "sarif_report",
    "severity_rank",
    "slot_of",
    "solve",
    "stores_reaching",
]
