"""Static analysis over NFIR: dataflow infrastructure and offload lint.

Clara's premise (paper Sections 3.1, 4.3-4.4) is that offloading
insights are derivable *statically* from the NF's IR.  This package is
the reusable machinery behind that:

* :mod:`repro.nfir.analysis.dominance` — dominator tree and dominance
  frontier (Cooper-Harvey-Kennedy), shared by the verifier's SSA
  checks and the loop analyses in :mod:`repro.nfir.cfg`;
* :mod:`repro.nfir.analysis.dataflow` — a generic forward/backward
  worklist solver plus def-use chains, liveness, reaching stores, and
  definitely-initialized slots;
* :mod:`repro.nfir.analysis.lint` — the pass framework: stable
  ``CL###`` rule codes, :class:`Diagnostic`, :class:`PassRegistry`,
  and schema-versioned :class:`LintReport` with JSON/SARIF output;
* :mod:`repro.nfir.analysis.passes` — the built-in offload rules
  (NIC-unsupported opcodes, unbounded loops, recursion, dead state,
  uninitialized loads, unreachable blocks, scale-out race candidates,
  oversized/misaligned state).

``python -m repro.nfir.analysis --self-check`` exercises the whole
stack against built-in fixtures (used as a CI smoke test).
"""

from repro.nfir.analysis.dataflow import (
    DataflowProblem,
    DataflowResult,
    DefUseChains,
    initialized_slots,
    liveness,
    maybe_uninitialized_loads,
    reaching_stores,
    slot_of,
    solve,
    stores_reaching,
)
from repro.nfir.analysis.dominance import DominatorTree, block_predecessors
from repro.nfir.analysis.lint import (
    Diagnostic,
    LINT_REPORT_SCHEMA,
    LintContext,
    LintPass,
    LintReport,
    PassRegistry,
    SEVERITIES,
    SEVERITY_ERROR,
    SEVERITY_NOTE,
    SEVERITY_WARNING,
    lint_module,
    sarif_report,
    severity_rank,
)
from repro.nfir.analysis.passes import BUILTIN_PASSES, default_registry

__all__ = [
    "BUILTIN_PASSES",
    "DataflowProblem",
    "DataflowResult",
    "DefUseChains",
    "Diagnostic",
    "DominatorTree",
    "LINT_REPORT_SCHEMA",
    "LintContext",
    "LintPass",
    "LintReport",
    "PassRegistry",
    "SEVERITIES",
    "SEVERITY_ERROR",
    "SEVERITY_NOTE",
    "SEVERITY_WARNING",
    "block_predecessors",
    "default_registry",
    "initialized_slots",
    "lint_module",
    "liveness",
    "maybe_uninitialized_loads",
    "reaching_stores",
    "sarif_report",
    "severity_rank",
    "slot_of",
    "solve",
    "stores_reaching",
]
