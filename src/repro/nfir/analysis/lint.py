"""The offload-lint framework: diagnostics, passes, and reports.

Every check the static analyzer performs is a :class:`LintPass` with a
stable rule code (``CL001``...), registered in a :class:`PassRegistry`
so callers can enable/disable rules individually and third parties can
plug in their own.  Running a registry over a module produces a
:class:`LintReport` — a schema-versioned collection of
:class:`Diagnostic` s with human, JSON, and SARIF renderings.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import (
    Any,
    Dict,
    Iterable,
    List,
    Mapping,
    Optional,
    Sequence,
    Set,
    Tuple,
)

from repro.nfir.analysis.dominance import DominatorTree
from repro.nfir.function import Function, Module

#: version of the ``LintReport.to_dict()`` layout (bump on
#: incompatible changes; documented in docs/API.md).
#: v2: diagnostics carry a ``data`` dict (machine-readable facts:
#: proofs, downgrade links, fix suggestions), and reports list the
#: inline ``clara-disable`` suppressed diagnostics.
LINT_REPORT_SCHEMA = 2

#: meta key (on a :class:`~repro.nfir.instructions.Instruction` or a
#: :class:`~repro.nfir.function.Module`) holding suppressed rule codes:
#: a sequence of ``CL###`` strings, or ``"all"``.
SUPPRESS_META_KEY = "clara-disable"

SEVERITY_ERROR = "error"
SEVERITY_WARNING = "warning"
SEVERITY_NOTE = "note"

#: ordered weakest-first, so ``max(..., key=severity_rank)`` works.
SEVERITIES = (SEVERITY_NOTE, SEVERITY_WARNING, SEVERITY_ERROR)


def severity_rank(severity: str) -> int:
    try:
        return SEVERITIES.index(severity)
    except ValueError:
        raise ValueError(f"unknown severity {severity!r}") from None


@dataclass
class Diagnostic:
    """One finding: a rule code, a severity, and a location.

    ``function``/``block``/``instruction`` narrow the location as far
    as the rule can (module-scope findings, e.g. about a global, leave
    them ``None``; ``instruction`` is the value ref or opcode).

    ``data`` carries machine-readable facts alongside the prose:
    proof payloads (``trip_max``, ``live_bytes``), cross-rule links
    (``downgrades``/``downgraded_by``/``global``), and SARIF ``fix``
    suggestions.  Values must be JSON-serializable.
    """

    rule: str
    severity: str
    message: str
    function: Optional[str] = None
    block: Optional[str] = None
    instruction: Optional[str] = None
    data: Dict[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        severity_rank(self.severity)  # validate

    def location(self) -> str:
        parts = [p for p in (
            f"@{self.function}" if self.function else None,
            f"%{self.block}" if self.block else None,
            self.instruction,
        ) if p]
        return ":".join(parts) if parts else "<module>"

    def render(self) -> str:
        return f"{self.severity}[{self.rule}] {self.location()}: {self.message}"

    def to_dict(self) -> Dict[str, Any]:
        return {
            "rule": self.rule,
            "severity": self.severity,
            "message": self.message,
            "function": self.function,
            "block": self.block,
            "instruction": self.instruction,
            "data": dict(self.data),
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "Diagnostic":
        return cls(
            rule=str(data["rule"]),
            severity=str(data["severity"]),
            message=str(data["message"]),
            function=data.get("function"),
            block=data.get("block"),
            instruction=data.get("instruction"),
            data=dict(data.get("data") or {}),
        )


class LintContext:
    """Shared per-module analysis state, built lazily so passes that
    need the same dominator tree or annotation do not recompute it.

    ``target`` is the NIC backend the lint run analyses for (a name,
    a :class:`~repro.nic.targets.TargetDescription`, or ``None`` for
    the default); capacity-style rules read their thresholds from it.
    """

    def __init__(self, module: Module, target: Any = None) -> None:
        from repro.nic.targets import resolve_target

        self.module = module
        self.target = resolve_target(target)
        self._domtrees: Dict[str, DominatorTree] = {}
        self._intervals: Dict[str, Any] = {}
        self._trip_bounds: Dict[str, Dict[str, Any]] = {}
        self._footprints: Optional[Dict[str, Any]] = None

    def domtree(self, function: Function) -> DominatorTree:
        tree = self._domtrees.get(function.name)
        if tree is None:
            tree = DominatorTree(function)
            self._domtrees[function.name] = tree
        return tree

    def intervals(self, function: Function):
        """The solved :class:`~repro.nfir.analysis.absint
        .IntervalAnalysis` for one function (cached; shared with the
        footprint domain)."""
        from repro.nfir.analysis.absint import IntervalAnalysis

        analysis = self._intervals.get(function.name)
        if analysis is None:
            analysis = IntervalAnalysis(function)
            self._intervals[function.name] = analysis
        return analysis

    def trip_bounds(self, function: Function) -> Dict[str, Any]:
        """Proven loop bounds per header block name (cached)."""
        from repro.nfir.analysis.absint import loop_trip_bounds

        bounds = self._trip_bounds.get(function.name)
        if bounds is None:
            bounds = loop_trip_bounds(
                function, self.intervals(function), self.domtree(function)
            )
            self._trip_bounds[function.name] = bounds
        return bounds

    def footprints(self) -> Dict[str, Any]:
        """Per-global :class:`~repro.nfir.analysis.footprint
        .StateFootprint` s for the module (cached; reuses the interval
        fixpoints)."""
        from repro.nfir.analysis.footprint import module_footprints

        if self._footprints is None:
            for function in self.module.functions.values():
                self.intervals(function)  # warm the shared cache
            self._footprints = module_footprints(
                self.module, analyses=self._intervals
            )
        return self._footprints


class LintPass:
    """Base class of every lint rule.

    Subclasses set :attr:`code` (stable ``CL###`` identifier),
    :attr:`name` (kebab-case slug used in output and docs), and
    :attr:`description`, and implement :meth:`run` yielding
    :class:`Diagnostic` s.
    """

    code: str = "CL000"
    name: str = "unnamed"
    description: str = ""

    def run(self, module: Module, ctx: LintContext) -> Iterable[Diagnostic]:
        raise NotImplementedError

    def diag(
        self,
        severity: str,
        message: str,
        data: Optional[Dict[str, Any]] = None,
        **loc: Optional[str],
    ) -> Diagnostic:
        return Diagnostic(
            self.code, severity, message, data=dict(data or {}), **loc
        )


class PassRegistry:
    """An ordered collection of lint passes, addressable by code or
    name, with per-run enable/disable."""

    def __init__(self, passes: Sequence[LintPass] = ()) -> None:
        self._passes: Dict[str, LintPass] = {}
        for p in passes:
            self.register(p)

    def register(self, pass_: LintPass) -> LintPass:
        if isinstance(pass_, type):
            pass_ = pass_()
        if not pass_.code.startswith("CL") or pass_.code == "CL000":
            raise ValueError(
                f"lint pass {type(pass_).__name__} needs a stable CL### code"
            )
        if pass_.code in self._passes:
            raise ValueError(f"duplicate lint rule code {pass_.code}")
        self._passes[pass_.code] = pass_
        return pass_

    def get(self, code_or_name: str) -> LintPass:
        if code_or_name in self._passes:
            return self._passes[code_or_name]
        for p in self._passes.values():
            if p.name == code_or_name:
                return p
        raise KeyError(f"no lint rule {code_or_name!r}")

    def __iter__(self):
        return iter(self._passes.values())

    def __len__(self) -> int:
        return len(self._passes)

    @property
    def codes(self) -> List[str]:
        return sorted(self._passes)

    def select(
        self,
        only: Optional[Sequence[str]] = None,
        disable: Optional[Sequence[str]] = None,
    ) -> List[LintPass]:
        """The passes a run should execute: ``only`` whitelists rule
        codes/names, ``disable`` removes them; both validate."""
        chosen = (
            [self.get(c) for c in only]
            if only is not None
            else [self._passes[c] for c in self.codes]
        )
        if disable:
            dropped = {id(self.get(c)) for c in disable}
            chosen = [p for p in chosen if id(p) not in dropped]
        return chosen

    def run(
        self,
        module: Module,
        only: Optional[Sequence[str]] = None,
        disable: Optional[Sequence[str]] = None,
        target: Any = None,
    ) -> "LintReport":
        ctx = LintContext(module, target=target)
        diagnostics: List[Diagnostic] = []
        for pass_ in self.select(only=only, disable=disable):
            diagnostics.extend(pass_.run(module, ctx))
        apply_downgrades(diagnostics)
        diagnostics, suppressed = apply_suppressions(module, diagnostics)
        return LintReport(
            module_name=module.name,
            diagnostics=diagnostics,
            suppressed=suppressed,
        )


def apply_downgrades(diagnostics: Sequence[Diagnostic]) -> None:
    """Resolve cross-rule downgrade links in place.

    A note whose ``data`` names a rule under ``downgrades`` (e.g.
    CL009's bounded-loop proof names CL002) lowers the severity of
    matching diagnostics of that rule to note: same function/block
    location, or — when the note names a ``global`` — the same global
    in the target's ``data``.  The downgraded diagnostic keeps its rule
    code and records ``downgraded_by`` so baselines stay stable.
    """
    proofs = [d for d in diagnostics if d.data.get("downgrades")]
    for proof in proofs:
        rule = str(proof.data["downgrades"])
        for diag in diagnostics:
            if diag.rule != rule or diag.severity == SEVERITY_NOTE:
                continue
            if proof.data.get("global") is not None:
                matched = diag.data.get("global") == proof.data["global"]
            else:
                matched = (
                    diag.function == proof.function
                    and diag.block == proof.block
                )
            if matched:
                diag.severity = SEVERITY_NOTE
                diag.data["downgraded_by"] = proof.rule
                diag.message += f" [downgraded by {proof.rule}]"


def _suppressed_rules(meta: Mapping[str, Any]) -> Optional[Set[str]]:
    """Rule codes a ``clara-disable`` meta entry suppresses (``None``
    when absent; an empty set never occurs — ``"all"`` returns
    ``{"all"}``)."""
    raw = meta.get(SUPPRESS_META_KEY)
    if raw is None:
        return None
    if isinstance(raw, str):
        rules = {r.strip() for r in raw.split(",") if r.strip()}
    else:
        rules = {str(r).strip() for r in raw}
    return rules or None


def _matches(rules: Set[str], code: str) -> bool:
    return "all" in rules or code in rules


def apply_suppressions(
    module: Module, diagnostics: Sequence[Diagnostic]
) -> Tuple[List[Diagnostic], List[Diagnostic]]:
    """Split diagnostics into (kept, suppressed) under the module's
    inline ``clara-disable`` markers.

    A module-level marker (``module.meta``) suppresses matching rules
    everywhere; an instruction-level marker (``instr.meta``) suppresses
    matching diagnostics at that exact instruction, or anywhere in its
    block when the diagnostic carries no instruction ref (how
    block-granular rules like CL002 are silenced).
    """
    module_rules = _suppressed_rules(module.meta)
    by_instr: Dict[Tuple[str, str, str], Set[str]] = {}
    by_block: Dict[Tuple[str, str], Set[str]] = {}
    for function in module.functions.values():
        for block in function.blocks:
            for instr in block.instructions:
                rules = _suppressed_rules(instr.meta)
                if rules is None:
                    continue
                ref = instr.ref() if instr.name is not None else instr.opcode
                by_instr.setdefault(
                    (function.name, block.name, ref), set()
                ).update(rules)
                by_block.setdefault(
                    (function.name, block.name), set()
                ).update(rules)
    kept: List[Diagnostic] = []
    suppressed: List[Diagnostic] = []
    for diag in diagnostics:
        rules: Optional[Set[str]] = None
        if module_rules is not None and _matches(module_rules, diag.rule):
            rules = module_rules
        elif diag.function is not None and diag.block is not None:
            if diag.instruction is not None:
                rules = by_instr.get(
                    (diag.function, diag.block, diag.instruction)
                )
            else:
                rules = by_block.get((diag.function, diag.block))
        if rules is not None and _matches(rules, diag.rule):
            suppressed.append(diag)
        else:
            kept.append(diag)
    return kept, suppressed


@dataclass
class LintReport:
    """Every diagnostic one lint run produced for one module.

    ``suppressed`` lists the diagnostics inline ``clara-disable``
    markers silenced — excluded from counts and exit codes but kept in
    the report so suppressions stay visible and auditable.
    """

    module_name: str
    diagnostics: List[Diagnostic] = field(default_factory=list)
    suppressed: List[Diagnostic] = field(default_factory=list)

    def by_severity(self, severity: str) -> List[Diagnostic]:
        return [d for d in self.diagnostics if d.severity == severity]

    @property
    def n_errors(self) -> int:
        return len(self.by_severity(SEVERITY_ERROR))

    @property
    def n_warnings(self) -> int:
        return len(self.by_severity(SEVERITY_WARNING))

    @property
    def max_severity(self) -> Optional[str]:
        if not self.diagnostics:
            return None
        return max((d.severity for d in self.diagnostics), key=severity_rank)

    @property
    def clean(self) -> bool:
        """No diagnostics above note severity."""
        return self.n_errors == 0 and self.n_warnings == 0

    def counts(self) -> Dict[str, int]:
        out = {s: 0 for s in SEVERITIES}
        for d in self.diagnostics:
            out[d.severity] += 1
        return out

    @property
    def n_suppressed(self) -> int:
        return len(self.suppressed)

    # -- serialization -------------------------------------------------
    def to_dict(self) -> Dict[str, Any]:
        return {
            "schema": LINT_REPORT_SCHEMA,
            "kind": "lint_report",
            "module": self.module_name,
            "counts": self.counts(),
            "diagnostics": [d.to_dict() for d in self.diagnostics],
            "suppressed": [d.to_dict() for d in self.suppressed],
        }

    def to_json(self, indent: Optional[int] = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent)

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "LintReport":
        schema = data.get("schema")
        if schema != LINT_REPORT_SCHEMA:
            raise ValueError(
                f"unsupported lint-report schema {schema!r}"
                f" (expected {LINT_REPORT_SCHEMA})"
            )
        return cls(
            module_name=str(data.get("module", "")),
            diagnostics=[
                Diagnostic.from_dict(d) for d in data.get("diagnostics", [])
            ],
            suppressed=[
                Diagnostic.from_dict(d) for d in data.get("suppressed", [])
            ],
        )

    def render(self) -> str:
        lines = [f"lint: module {self.module_name}"]
        for d in self.diagnostics:
            lines.append("  " + d.render())
        counts = self.counts()
        summary = (
            f"  {counts[SEVERITY_ERROR]} error(s),"
            f" {counts[SEVERITY_WARNING]} warning(s),"
            f" {counts[SEVERITY_NOTE]} note(s)"
        )
        if self.suppressed:
            summary += f", {len(self.suppressed)} suppressed"
        lines.append(summary)
        return "\n".join(lines) + "\n"


def sarif_report(
    reports: Sequence[LintReport], registry: Optional[PassRegistry] = None
) -> Dict[str, Any]:
    """A SARIF 2.1.0 document for one or more lint runs (one SARIF run
    total; module/function/block locations map to logicalLocations)."""
    rules: List[Dict[str, Any]] = []
    if registry is not None:
        rules = [
            {
                "id": p.code,
                "name": p.name,
                "shortDescription": {"text": p.description or p.name},
            }
            for p in sorted(registry, key=lambda p: p.code)
        ]
    results: List[Dict[str, Any]] = []
    for report in reports:
        for d in report.diagnostics:
            qualified = ".".join(
                part for part in (
                    report.module_name, d.function, d.block, d.instruction
                ) if part
            )
            result: Dict[str, Any] = {
                "ruleId": d.rule,
                "level": d.severity,  # SARIF levels: error/warning/note
                "message": {"text": d.message},
                "locations": [{
                    "logicalLocations": [{"fullyQualifiedName": qualified}]
                }],
            }
            fix = d.data.get("fix") if d.data else None
            if isinstance(fix, Mapping) and fix.get("description"):
                change: Dict[str, Any] = {
                    "artifactLocation": {"uri": f"nfir:{qualified}"},
                    "replacements": [{
                        "deletedRegion": {"startLine": 1, "startColumn": 1},
                    }],
                }
                replacement = fix.get("replacement")
                if replacement:
                    change["replacements"][0]["insertedContent"] = {
                        "text": str(replacement)
                    }
                result["fixes"] = [{
                    "description": {"text": str(fix["description"])},
                    "artifactChanges": [change],
                }]
            results.append(result)
    return {
        "$schema": (
            "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/"
            "master/Schemata/sarif-schema-2.1.0.json"
        ),
        "version": "2.1.0",
        "runs": [{
            "tool": {
                "driver": {
                    "name": "clara-lint",
                    "informationUri": "https://example.invalid/clara",
                    "rules": rules,
                }
            },
            "results": results,
        }],
    }


def lint_module(
    module: Module,
    registry: Optional[PassRegistry] = None,
    only: Optional[Sequence[str]] = None,
    disable: Optional[Sequence[str]] = None,
    target: Any = None,
) -> LintReport:
    """Run the (default) lint suite over one module for one target."""
    if registry is None:
        from repro.nfir.analysis.passes import default_registry

        registry = default_registry()
    return registry.run(module, only=only, disable=disable, target=target)
