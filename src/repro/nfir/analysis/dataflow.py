"""Classic dataflow analyses over NFIR functions.

A small, generic worklist solver (:func:`solve`) over the function's
basic blocks, plus the standard instances the verifier and lint passes
need: def-use chains, liveness, reaching stores (the reaching
definitions that matter in our alloca-lowered IR), and
definitely-initialized stack slots.

All analyses are flow-sensitive at *block* granularity: results are
in/out sets per block, with helpers to refine to a specific
instruction by walking the block.  SSA values have a single definition
site by construction, so the interesting "definitions" for a reaching
analysis here are stores into stack slots.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, List, Optional, Set, Tuple

from repro.nfir.analysis.dominance import block_predecessors
from repro.nfir.block import BasicBlock
from repro.nfir.function import Function
from repro.nfir.instructions import (
    Alloca,
    Cast,
    GEP,
    Instruction,
    Load,
    Phi,
    Store,
)
from repro.nfir.values import Argument, Constant, Value

FORWARD = "forward"
BACKWARD = "backward"


class DataflowProblem:
    """One dataflow problem: direction, meet, and a transfer function.

    Subclasses set :attr:`direction` (``"forward"``/``"backward"``) and
    :attr:`meet` (``"union"`` for may-analyses, ``"intersection"`` for
    must-analyses), and implement :meth:`transfer`.  ``boundary`` is
    the value at the entry (forward) or at every exit (backward);
    ``universe`` is only consulted for intersection meets, as the
    optimistic initial value of interior blocks.
    """

    direction: str = FORWARD
    meet: str = "union"

    def boundary(self, function: Function) -> FrozenSet:
        return frozenset()

    def universe(self, function: Function) -> FrozenSet:
        return frozenset()

    def transfer(self, block: BasicBlock, value: FrozenSet) -> FrozenSet:
        raise NotImplementedError

    def edge_transfer(
        self, source: BasicBlock, dest: BasicBlock, value: FrozenSet
    ) -> FrozenSet:
        """Refine ``source``'s contribution along the edge into ``dest``
        before the meet.  The default is the identity; path-sensitive
        problems (e.g. the interval domain's branch refinement) override
        it.  For forward problems ``source`` is a predecessor of
        ``dest``; for backward problems it is a successor."""
        return value


@dataclass
class DataflowResult:
    """Per-block fixpoint: ``in_sets[name]``/``out_sets[name]``."""

    in_sets: Dict[str, FrozenSet] = field(default_factory=dict)
    out_sets: Dict[str, FrozenSet] = field(default_factory=dict)


def solve(function: Function, problem: DataflowProblem) -> DataflowResult:
    """Run the worklist algorithm for ``problem`` to a fixpoint."""
    if problem.direction not in (FORWARD, BACKWARD):
        raise ValueError(f"unknown direction {problem.direction!r}")
    if problem.meet not in ("union", "intersection"):
        raise ValueError(f"unknown meet {problem.meet!r}")

    preds = block_predecessors(function)
    succs: Dict[str, List[BasicBlock]] = {
        b.name: b.successors() for b in function.blocks
    }
    by_name = {b.name: b for b in function.blocks}
    forward = problem.direction == FORWARD

    boundary = frozenset(problem.boundary(function))
    init = (
        frozenset(problem.universe(function))
        if problem.meet == "intersection"
        else frozenset()
    )
    # For forward problems the meet input of a block is its preds'
    # outs; for backward problems it is its succs' ins.
    sources = preds if forward else succs
    is_boundary = (
        (lambda name: name == function.entry.name)
        if forward
        else (lambda name: not succs[name])
    )

    result = DataflowResult()
    for block in function.blocks:
        meet_side = boundary if is_boundary(block.name) else init
        if forward:
            result.in_sets[block.name] = meet_side
            result.out_sets[block.name] = problem.transfer(block, meet_side)
        else:
            result.out_sets[block.name] = meet_side
            result.in_sets[block.name] = problem.transfer(block, meet_side)

    worklist: List[str] = [b.name for b in function.blocks]
    if not forward:
        worklist.reverse()
    pending: Set[str] = set(worklist)
    while worklist:
        name = worklist.pop(0)
        pending.discard(name)
        dest = by_name[name]
        inputs = [
            problem.edge_transfer(
                s, dest, (result.out_sets if forward else result.in_sets)[s.name]
            )
            for s in sources[name]
        ]
        if inputs:
            merged = inputs[0]
            for other in inputs[1:]:
                merged = (
                    merged | other
                    if problem.meet == "union"
                    else merged & other
                )
            if is_boundary(name):
                merged = (
                    merged | boundary
                    if problem.meet == "union"
                    else merged & boundary
                )
        else:
            merged = boundary if is_boundary(name) else init
        transferred = problem.transfer(dest, merged)
        if forward:
            result.in_sets[name] = merged
            changed = transferred != result.out_sets[name]
            result.out_sets[name] = transferred
            dependents = succs[name]
        else:
            result.out_sets[name] = merged
            changed = transferred != result.in_sets[name]
            result.in_sets[name] = transferred
            dependents = preds[name]
        if changed:
            for dep in dependents:
                if dep.name not in pending:
                    pending.add(dep.name)
                    worklist.append(dep.name)
    return result


# -- def-use / use-def chains ------------------------------------------


class DefUseChains:
    """SSA def-use and use-def chains for one function.

    ``users(value)`` lists the instructions that consume a value
    (including phi incomings); ``uses(instr)`` lists the non-constant
    values an instruction consumes.  Definitions are the SSA values
    themselves, so the use-def direction is the identity on
    :class:`Instruction`/:class:`Argument` operands.
    """

    def __init__(self, function: Function) -> None:
        self.function = function
        self._users: Dict[int, List[Instruction]] = {}
        self._by_id: Dict[int, Value] = {}
        for instr in function.instructions():
            for op in instr.operands:
                if isinstance(op, Constant):
                    continue
                self._by_id[id(op)] = op
                self._users.setdefault(id(op), []).append(instr)

    def users(self, value: Value) -> List[Instruction]:
        return list(self._users.get(id(value), []))

    def n_users(self, value: Value) -> int:
        return len(self._users.get(id(value), []))

    def is_dead(self, instr: Instruction) -> bool:
        """A value-producing instruction nothing consumes."""
        return instr.produces_value and not self._users.get(id(instr))

    @staticmethod
    def uses(instr: Instruction) -> List[Value]:
        return [op for op in instr.operands if not isinstance(op, Constant)]


# -- liveness ----------------------------------------------------------


class _Liveness(DataflowProblem):
    direction = BACKWARD
    meet = "union"

    def __init__(self, function: Function) -> None:
        # Per-block use (read before any local def) and def sets.
        # Values a successor's phi receives from this block are uses at
        # the *end* of this block, so they only land in the use set
        # when the block does not define them itself.
        self._use: Dict[str, Set[Value]] = {}
        self._def: Dict[str, Set[Value]] = {}
        for block in function.blocks:
            used: Set[Value] = set()
            defined: Set[Value] = set()
            for instr in block.instructions:
                if not isinstance(instr, Phi):
                    for op in instr.operands:
                        if isinstance(op, Constant):
                            continue
                        if op not in defined:
                            used.add(op)
                if instr.produces_value:
                    defined.add(instr)
            for succ in block.successors():
                for instr in succ.instructions:
                    if not isinstance(instr, Phi):
                        continue
                    for value, pred in instr.incomings:
                        if (
                            pred is block
                            and not isinstance(value, Constant)
                            and value not in defined
                        ):
                            used.add(value)
            self._use[block.name] = used
            self._def[block.name] = defined

    def transfer(self, block: BasicBlock, value: FrozenSet) -> FrozenSet:
        return frozenset(
            self._use[block.name] | (set(value) - self._def[block.name])
        )


def liveness(function: Function) -> DataflowResult:
    """Live SSA values at block boundaries (``in_sets``/``out_sets``
    hold :class:`Value` objects; constants are never live)."""
    return solve(function, _Liveness(function))


# -- reaching stores (reaching definitions over stack slots) -----------


def slot_of(ptr: Value) -> Optional[Instruction]:
    """The alloca a pointer value roots at, through GEP/cast chains
    (``None`` when the pointer roots elsewhere: globals, arguments,
    call results)."""
    seen = 0
    while seen < 1000:
        seen += 1
        if isinstance(ptr, GEP):
            ptr = ptr.base
        elif isinstance(ptr, Cast):
            ptr = ptr.value
        else:
            break
    return ptr if isinstance(ptr, Alloca) else None


class _ReachingStores(DataflowProblem):
    direction = FORWARD
    meet = "union"

    def __init__(self, function: Function) -> None:
        self._stores_by_slot: Dict[int, Set[Store]] = {}
        for instr in function.instructions():
            if isinstance(instr, Store):
                slot = slot_of(instr.ptr)
                if slot is not None:
                    self._stores_by_slot.setdefault(id(slot), set()).add(instr)

    def transfer(self, block: BasicBlock, value: FrozenSet) -> FrozenSet:
        live: Set[Store] = set(value)
        for instr in block.instructions:
            if not isinstance(instr, Store):
                continue
            slot = slot_of(instr.ptr)
            if slot is None:
                continue
            # A whole-slot store kills earlier stores to the slot; a
            # store through a GEP only adds (field-insensitive).
            if instr.ptr is slot:
                live -= self._stores_by_slot[id(slot)]
            live.add(instr)
        return frozenset(live)


def reaching_stores(function: Function) -> DataflowResult:
    """Which :class:`Store` instructions may reach each block boundary
    (the reaching-definitions instance for alloca-lowered locals)."""
    return solve(function, _ReachingStores(function))


def stores_reaching(
    load: Load, result: Optional[DataflowResult] = None
) -> List[Store]:
    """The stores that may feed one load of a stack slot.  Walks the
    load's block over the block-level fixpoint (computed on demand
    when ``result`` is not supplied)."""
    block = load.parent
    if block is None or block.parent is None:
        raise ValueError("load is not attached to a function")
    slot = slot_of(load.ptr)
    if slot is None:
        return []
    function = block.parent
    if result is None:
        result = reaching_stores(function)
    live: Set[Store] = {
        s for s in result.in_sets.get(block.name, frozenset())
        if slot_of(s.ptr) is slot
    }
    for instr in block.instructions:
        if instr is load:
            break
        if isinstance(instr, Store) and slot_of(instr.ptr) is slot:
            if instr.ptr is slot:
                live.clear()
            live.add(instr)
    return sorted(live, key=id)


# -- definitely-initialized slots --------------------------------------


class _InitializedSlots(DataflowProblem):
    """Must-analysis: the stack slots guaranteed written on *every*
    path from the entry (field-insensitive: any store through the slot,
    including via GEP, initializes it)."""

    direction = FORWARD
    meet = "intersection"

    def universe(self, function: Function) -> FrozenSet:
        return frozenset(
            i for i in function.instructions() if isinstance(i, Alloca)
        )

    def transfer(self, block: BasicBlock, value: FrozenSet) -> FrozenSet:
        out: Set[Value] = set(value)
        for instr in block.instructions:
            if isinstance(instr, Store):
                slot = slot_of(instr.ptr)
                if slot is not None:
                    out.add(slot)
        return frozenset(out)


def initialized_slots(function: Function) -> DataflowResult:
    """Definitely-initialized allocas at block boundaries."""
    return solve(function, _InitializedSlots())


def maybe_uninitialized_loads(
    function: Function,
) -> List[Tuple[Load, Instruction]]:
    """Loads of stack slots that some entry path never stored to.
    Returns ``(load, alloca)`` pairs in program order."""
    result = initialized_slots(function)
    findings: List[Tuple[Load, Instruction]] = []
    for block in function.blocks:
        ready: Set[Value] = set(result.in_sets.get(block.name, frozenset()))
        for instr in block.instructions:
            if isinstance(instr, Load):
                slot = slot_of(instr.ptr)
                if slot is not None and slot not in ready:
                    findings.append((instr, slot))
            elif isinstance(instr, Store):
                slot = slot_of(instr.ptr)
                if slot is not None:
                    ready.add(slot)
    return findings


def values_defined(function: Function) -> Iterable[Value]:
    """All SSA values a function defines (arguments + instructions)."""
    yield from function.args
    for instr in function.instructions():
        if instr.produces_value:
            yield instr
