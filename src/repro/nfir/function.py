"""Functions, global variables, and modules.

A :class:`Module` corresponds to one lowered NF element: its packet
handler, any internal subroutines, and the element's *stateful* global
data structures (flow tables, counters, ...), which drive the state
placement and coalescing analyses (paper Sections 4.3-4.4).
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Sequence, Tuple

from repro.nfir.block import BasicBlock
from repro.nfir.types import IRType, PointerType, VOID
from repro.nfir.values import Argument, Value

# Global kinds mirror the Click stateful structures from Section 3.3.
GLOBAL_KINDS = ("scalar", "array", "struct", "hashmap", "vector")


class GlobalVariable(Value):
    """A module-level stateful variable.

    ``size_bytes`` is the footprint the placement ILP reasons about; for
    hashmaps/vectors it is the pre-sized backing store (baremetal NICs
    have no runtime allocation, Section 3.3).
    """

    def __init__(
        self,
        name: str,
        type_: IRType,
        kind: str = "scalar",
        size_bytes: Optional[int] = None,
        entries: int = 1,
    ) -> None:
        if kind not in GLOBAL_KINDS:
            raise ValueError(f"unknown global kind {kind!r}")
        super().__init__(PointerType(type_), name)
        self.value_type = type_
        self.kind = kind
        self.entries = entries
        # `type_` already encodes the full footprint (arrays carry
        # their element count); `entries` is metadata, not a multiplier.
        self.size_bytes = (
            size_bytes if size_bytes is not None else type_.size_bytes()
        )

    def ref(self) -> str:
        return f"@{self.name}"


class Function:
    def __init__(
        self,
        name: str,
        args: Sequence[Tuple[str, IRType]] = (),
        ret_type: IRType = VOID,
        is_api: bool = False,
    ) -> None:
        self.name = name
        self.args: List[Argument] = [
            Argument(t, n, i) for i, (n, t) in enumerate(args)
        ]
        self.ret_type = ret_type
        self.is_api = is_api
        self.blocks: List[BasicBlock] = []
        self._next_id = 0

    def add_block(self, name: Optional[str] = None) -> BasicBlock:
        if name is None:
            name = f"bb{len(self.blocks)}"
        if any(b.name == name for b in self.blocks):
            raise ValueError(f"duplicate block name {name!r} in {self.name}")
        block = BasicBlock(name, parent=self)
        self.blocks.append(block)
        return block

    def get_block(self, name: str) -> BasicBlock:
        for block in self.blocks:
            if block.name == name:
                return block
        raise KeyError(f"no block named {name!r} in function {self.name}")

    @property
    def entry(self) -> BasicBlock:
        if not self.blocks:
            raise ValueError(f"function {self.name} has no blocks")
        return self.blocks[0]

    def next_value_name(self, prefix: str = "v") -> str:
        self._next_id += 1
        return f"{prefix}{self._next_id}"

    def instructions(self) -> Iterator:
        for block in self.blocks:
            yield from block.instructions

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Function {self.name} ({len(self.blocks)} blocks)>"


class Module:
    def __init__(self, name: str) -> None:
        self.name = name
        self.functions: Dict[str, Function] = {}
        self.globals: Dict[str, GlobalVariable] = {}
        # Free-form annotations (e.g. the source ElementDef, synthesis
        # provenance).  Not printed/parsed.
        self.meta: Dict[str, object] = {}

    def add_function(self, function: Function) -> Function:
        if function.name in self.functions:
            raise ValueError(f"duplicate function {function.name!r}")
        self.functions[function.name] = function
        return function

    def add_global(self, global_var: GlobalVariable) -> GlobalVariable:
        if global_var.name in self.globals:
            raise ValueError(f"duplicate global {global_var.name!r}")
        self.globals[global_var.name] = global_var
        return global_var

    def get_function(self, name: str) -> Function:
        return self.functions[name]

    @property
    def handler(self) -> Function:
        """The packet-handler entry point of the element.

        Click elements use ``simple_action``/``push``; our frontend
        always names the entry ``pkt_handler``.
        """
        if "pkt_handler" in self.functions:
            return self.functions["pkt_handler"]
        raise KeyError(f"module {self.name} has no pkt_handler")

    def total_state_bytes(self) -> int:
        return sum(g.size_bytes for g in self.globals.values())

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<Module {self.name} ({len(self.functions)} funcs,"
            f" {len(self.globals)} globals)>"
        )
