"""Instruction annotation: the static pass of paper Section 3.1.

Separates, per basic block:

* **compute** instructions (arithmetic, logic, comparisons, casts,
  address computation),
* **memory accesses**, further split into *stateful* (globals that
  persist across packets — flow tables, counters), *stateless*
  (function-local stack slots, which the SmartNIC register allocator
  normally elides), and *packet* (header/payload bytes, which live in
  the NIC's packet buffer),
* **framework API calls** that must be reverse ported, and
* control flow.

These categories drive everything downstream: the LSTM predicts what
the compute portion compiles to, stateful accesses are counted
directly, and API calls are swapped for reverse-ported profiles.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Dict, List, Optional, Tuple

from repro.nfir.block import BasicBlock
from repro.nfir.function import Function, GlobalVariable, Module
from repro.nfir.instructions import (
    Alloca,
    BinaryOp,
    Br,
    Call,
    Cast,
    CondBr,
    GEP,
    ICmp,
    Instruction,
    Load,
    Phi,
    Ret,
    Select,
    Store,
    CALL_KIND_API,
    CALL_KIND_INTRINSIC,
)
from repro.nfir.values import Argument, Value


class Category(str, Enum):
    COMPUTE = "compute"
    MEM_STATEFUL = "mem_stateful"
    MEM_STATELESS = "mem_stateless"
    MEM_PACKET = "mem_packet"
    API = "api"
    INTRINSIC = "intrinsic"
    CALL = "call"
    CONTROL = "control"
    ALLOCA = "alloca"


def trace_pointer_root(value: Value) -> Value:
    """Walk GEP/cast chains back to the root object of a pointer."""
    seen = 0
    while seen < 1000:
        seen += 1
        if isinstance(value, GEP):
            value = value.base
        elif isinstance(value, Cast):
            value = value.value
        else:
            return value
    return value  # pragma: no cover - cycle guard


#: points-to targets: "packet", "stateless", or "stateful:<global>".
PointsTo = str


def _root_target(root: Value, alloca_map: Optional[Dict[int, PointsTo]]) -> PointsTo:
    if isinstance(root, GlobalVariable):
        return f"stateful:{root.name}"
    if isinstance(root, Alloca):
        return "stateless"
    if isinstance(root, Argument):
        # Pointer arguments are packet buffers / header views.
        return "packet"
    if isinstance(root, Call):
        # Pointer-returning calls: header views point into the packet
        # buffer; stateful-structure lookups (hashmap_find, vector_at)
        # point into NF state.  The frontend records which via meta;
        # when meta is absent (e.g. after a textual round trip) the
        # target is inferred structurally: stateful APIs receive their
        # backing global as the first argument.
        points_to = root.meta.get("points_to")
        if points_to is not None:
            return str(points_to)
        if root.args and isinstance(root.args[0], GlobalVariable):
            return f"stateful:{root.args[0].name}"
        return "packet"
    if isinstance(root, Load):
        # A pointer read out of a local slot: consult the points-to map
        # built from the stores into that slot.  Without a map (or for
        # a pointer fetched out of a stateful structure) stay
        # conservative: treat the dereference as stateful.
        if alloca_map is not None:
            slot = trace_pointer_root(root.ptr)
            if isinstance(slot, Alloca) and id(slot) in alloca_map:
                return alloca_map[id(slot)]
        return "stateful:<indirect>"
    return "stateless"


def pointer_target(
    ptr: Value, alloca_map: Optional[Dict[int, PointsTo]] = None
) -> PointsTo:
    """Where a pointer value ultimately points (flow-insensitive)."""
    return _root_target(trace_pointer_root(ptr), alloca_map)


def build_alloca_points_to(function: Function) -> Dict[int, PointsTo]:
    """Flow-insensitive points-to targets for pointer-holding allocas.

    For every alloca of pointer type, merge the targets of all values
    stored into it.  Two passes resolve one level of pointer-copy
    chains (``p = q``), which is all the frontend produces.
    """
    alloca_map: Dict[int, PointsTo] = {}
    for _ in range(2):
        new_map: Dict[int, PointsTo] = {}
        for instr in function.instructions():
            if not isinstance(instr, Store):
                continue
            if not instr.value.type.is_pointer:
                continue
            slot = trace_pointer_root(instr.ptr)
            if not isinstance(slot, Alloca):
                continue
            target = pointer_target(instr.value, alloca_map)
            previous = new_map.get(id(slot))
            if previous is None or previous == target:
                new_map[id(slot)] = target
            else:
                # Conflicting stores: degrade predictably.  A slot that
                # may hold stateful pointers is treated as stateful.
                if previous.startswith("stateful") or target.startswith("stateful"):
                    new_map[id(slot)] = "stateful:<indirect>"
                else:
                    new_map[id(slot)] = "packet"
        alloca_map = new_map
    return alloca_map


def _memory_category(
    ptr: Value, alloca_map: Optional[Dict[int, PointsTo]] = None
) -> Category:
    target = pointer_target(ptr, alloca_map)
    if target.startswith("stateful"):
        return Category.MEM_STATEFUL
    if target == "packet":
        return Category.MEM_PACKET
    return Category.MEM_STATELESS


def classify_instruction(
    instr: Instruction, alloca_map: Optional[Dict[int, PointsTo]] = None
) -> Category:
    """Assign the Section-3.1 category of a single instruction."""
    if isinstance(instr, (BinaryOp, ICmp, Select, Cast, GEP)):
        return Category.COMPUTE
    if isinstance(instr, Load):
        return _memory_category(instr.ptr, alloca_map)
    if isinstance(instr, Store):
        return _memory_category(instr.ptr, alloca_map)
    if isinstance(instr, Alloca):
        return Category.ALLOCA
    if isinstance(instr, Call):
        if instr.kind == CALL_KIND_API:
            return Category.API
        if instr.kind == CALL_KIND_INTRINSIC:
            return Category.INTRINSIC
        return Category.CALL
    if isinstance(instr, (Br, CondBr, Ret, Phi)):
        return Category.CONTROL
    raise TypeError(f"cannot classify {instr!r}")


@dataclass
class StatefulAccess:
    """One load or store whose pointer roots at a module global."""

    global_name: str
    kind: str  # "load" | "store"
    size_bytes: int


@dataclass
class AnnotatedBlock:
    """Per-block annotation summary."""

    name: str
    counts: Dict[Category, int] = field(default_factory=dict)
    api_calls: List[str] = field(default_factory=list)
    stateful_accesses: List[StatefulAccess] = field(default_factory=list)
    instructions: List[Tuple[Instruction, Category]] = field(default_factory=list)

    @property
    def n_compute(self) -> int:
        return self.counts.get(Category.COMPUTE, 0)

    @property
    def n_mem_stateful(self) -> int:
        return self.counts.get(Category.MEM_STATEFUL, 0)

    @property
    def n_mem_stateless(self) -> int:
        return self.counts.get(Category.MEM_STATELESS, 0)

    @property
    def n_mem_packet(self) -> int:
        return self.counts.get(Category.MEM_PACKET, 0)

    @property
    def n_api(self) -> int:
        return self.counts.get(Category.API, 0)


def annotate_block(
    block: BasicBlock, alloca_map: Optional[Dict[int, PointsTo]] = None
) -> AnnotatedBlock:
    annotated = AnnotatedBlock(name=block.name)
    for instr in block.instructions:
        category = classify_instruction(instr, alloca_map)
        instr.meta["category"] = category
        annotated.counts[category] = annotated.counts.get(category, 0) + 1
        annotated.instructions.append((instr, category))
        if category == Category.API and isinstance(instr, Call):
            annotated.api_calls.append(instr.callee)
        if category == Category.MEM_STATEFUL:
            ptr = instr.ptr  # type: ignore[union-attr]
            target = pointer_target(ptr, alloca_map)
            _, _, gname = target.partition(":")
            gname = gname or "<indirect>"
            if isinstance(instr, Load):
                annotated.stateful_accesses.append(
                    StatefulAccess(gname, "load", instr.type.size_bytes())
                )
            elif isinstance(instr, Store):
                annotated.stateful_accesses.append(
                    StatefulAccess(gname, "store", instr.value.type.size_bytes())
                )
    return annotated


def annotate_function(function: Function) -> List[AnnotatedBlock]:
    alloca_map = build_alloca_points_to(function)
    return [annotate_block(block, alloca_map) for block in function.blocks]


@dataclass
class ModuleAnnotation:
    """Whole-module summary used by Table-2-style inventories."""

    module_name: str
    blocks: List[AnnotatedBlock]
    api_set: List[str]
    n_compute: int
    n_mem_stateful: int
    n_mem_stateless: int
    n_mem_packet: int
    n_api: int
    stateful: bool


def annotate_module(
    module: Module, function_name: str = "pkt_handler"
) -> ModuleAnnotation:
    function = module.get_function(function_name)
    blocks = annotate_function(function)
    api_set: List[str] = []
    for annotated in blocks:
        for api in annotated.api_calls:
            if api not in api_set:
                api_set.append(api)
    return ModuleAnnotation(
        module_name=module.name,
        blocks=blocks,
        api_set=api_set,
        n_compute=sum(b.n_compute for b in blocks),
        n_mem_stateful=sum(b.n_mem_stateful for b in blocks),
        n_mem_stateless=sum(b.n_mem_stateless for b in blocks),
        n_mem_packet=sum(b.n_mem_packet for b in blocks),
        n_api=sum(b.n_api for b in blocks),
        stateful=bool(module.globals),
    )
