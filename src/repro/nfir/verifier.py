"""Structural and SSA verifier for NFIR.

Checks the invariants the rest of the system depends on: every block is
terminated exactly once at its end, branch targets belong to the same
function, value names are unique, and — via the dominator tree from
:mod:`repro.nfir.analysis` — true SSA dominance: every non-phi use of an
instruction-defined value must be dominated by its definition, and phi
nodes must carry exactly one incoming value per CFG predecessor, each
dominating the end of that predecessor.  Load/store/GEP operand types
are re-checked structurally, so IR mutated after construction (e.g. by
``replace_operands``) cannot smuggle in type mismatches.

Uses inside unreachable blocks are exempt from dominance checks
(dominance is undefined there); unreachable blocks themselves are
reported by the lint suite (rule ``CL006``), not the verifier.
"""

from __future__ import annotations

from typing import Dict, Set

from repro.nfir.analysis.dominance import DominatorTree, block_predecessors
from repro.nfir.function import Function, Module
from repro.nfir.instructions import GEP, Instruction, Load, Phi, Store
from repro.nfir.types import ArrayType, StructType
from repro.nfir.values import Argument, Constant


class VerificationError(ValueError):
    pass


def _check_structure(function: Function) -> Set[int]:
    """The pre-SSA structural checks; returns the ids of every value
    defined in the function (arguments + instructions)."""
    names: Set[str] = set()
    defined: Set[int] = {id(arg) for arg in function.args}

    block_names: Set[str] = set()
    for block in function.blocks:
        if block.name in block_names:
            raise VerificationError(
                f"duplicate block name {block.name!r} in @{function.name}"
            )
        block_names.add(block.name)

    for block in function.blocks:
        if not block.is_terminated:
            raise VerificationError(
                f"block {block.name} in @{function.name} is not terminated"
            )
        for i, instr in enumerate(block.instructions):
            if instr.is_terminator and i != len(block.instructions) - 1:
                raise VerificationError(
                    f"terminator mid-block in {block.name} of @{function.name}"
                )
            if instr.produces_value:
                if instr.name is None:
                    raise VerificationError(
                        f"unnamed value-producing {instr.opcode} in @{function.name}"
                    )
                if instr.name in names:
                    raise VerificationError(
                        f"duplicate value name %{instr.name} in @{function.name}"
                    )
                names.add(instr.name)
            defined.add(id(instr))
        for successor in block.successors():
            if successor not in function.blocks:
                raise VerificationError(
                    f"branch from {block.name} to foreign block"
                    f" {successor.name} in @{function.name}"
                )
    return defined


def _def_position(
    function: Function,
) -> Dict[int, tuple]:
    """id(instr) -> (block name, index within the block)."""
    position: Dict[int, tuple] = {}
    for block in function.blocks:
        for i, instr in enumerate(block.instructions):
            position[id(instr)] = (block.name, i)
    return position


def _check_types(function: Function) -> None:
    """Re-check memory/addressing operand types structurally.

    Instruction constructors enforce these at build time, but
    ``replace_operands`` (used by the inliner and peephole rewrites)
    swaps operands without re-validation.
    """
    for block in function.blocks:
        for instr in block.instructions:
            where = f"in block {block.name} of @{function.name}"
            if isinstance(instr, Load):
                if not instr.ptr.type.is_pointer:
                    raise VerificationError(
                        f"load from non-pointer {instr.ptr.ref()} {where}"
                    )
                if instr.ptr.type.pointee != instr.type:
                    raise VerificationError(
                        f"load type {instr.type} does not match pointee"
                        f" {instr.ptr.type.pointee} {where}"
                    )
            elif isinstance(instr, Store):
                if not instr.ptr.type.is_pointer:
                    raise VerificationError(
                        f"store to non-pointer {instr.ptr.ref()} {where}"
                    )
                if instr.ptr.type.pointee != instr.value.type:
                    raise VerificationError(
                        f"store of {instr.value.type} into"
                        f" {instr.ptr.type} {where}"
                    )
            elif isinstance(instr, GEP):
                if not instr.base.type.is_pointer:
                    raise VerificationError(
                        f"GEP base {instr.base.ref()} is not a pointer {where}"
                    )
                pointee = instr.base.type.pointee
                for index in instr.indices:
                    if isinstance(index, str):
                        if not isinstance(pointee, StructType):
                            raise VerificationError(
                                f"GEP field index {index!r} into"
                                f" non-struct {pointee} {where}"
                            )
                        try:
                            pointee = pointee.field_type(index)
                        except KeyError:
                            raise VerificationError(
                                f"GEP names missing field {index!r} of"
                                f" {pointee} {where}"
                            ) from None
                    else:
                        if not isinstance(pointee, ArrayType):
                            raise VerificationError(
                                f"GEP array index into non-array"
                                f" {pointee} {where}"
                            )
                        pointee = pointee.element
                if instr.type.pointee != pointee:
                    raise VerificationError(
                        f"GEP result type {instr.type} does not match"
                        f" walked type {pointee}* {where}"
                    )


def verify_function(function: Function, module: Module | None = None) -> None:
    if not function.blocks:
        raise VerificationError(f"function @{function.name} has no blocks")

    defined = _check_structure(function)
    _check_types(function)

    global_ids: Set[int] = set()
    if module is not None:
        global_ids = {id(g) for g in module.globals.values()}

    tree = DominatorTree(function)
    position = _def_position(function)
    preds = block_predecessors(function)

    def check_use(instr: Instruction, op, use_block: str, where: str) -> None:
        if isinstance(op, (Constant, Argument)):
            return
        if id(op) not in defined:
            if id(op) in global_ids:
                return
            raise VerificationError(
                f"operand {op.ref()} of {where} is not defined in this"
                " function"
            )
        def_block, def_index = position[id(op)]
        if use_block not in tree.reachable:
            return  # dominance is undefined in unreachable code
        if def_block == use_block:
            use_index = position[id(instr)][1]
            if def_index >= use_index:
                raise VerificationError(
                    f"operand {op.ref()} of {where} is defined after its use"
                )
        elif not tree.dominates(def_block, use_block):
            raise VerificationError(
                f"operand {op.ref()} of {where} is defined in"
                f" {def_block}, which does not dominate {use_block}"
            )

    for block in function.blocks:
        for instr in block.instructions:
            where = (
                f"{instr.opcode} in block {block.name} of @{function.name}"
            )
            if isinstance(instr, Phi):
                incoming_preds = [p.name for p in preds[block.name]]
                seen_preds: Set[str] = set()
                for value, pred in instr.incomings:
                    if pred.name not in incoming_preds:
                        raise VerificationError(
                            f"phi {where} has an incoming from"
                            f" {pred.name}, which is not a predecessor"
                        )
                    if pred.name in seen_preds:
                        raise VerificationError(
                            f"phi {where} has duplicate incomings for"
                            f" predecessor {pred.name}"
                        )
                    seen_preds.add(pred.name)
                    # A phi use happens at the end of the predecessor:
                    # the incoming value must dominate the pred's exit.
                    if isinstance(value, (Constant, Argument)):
                        continue
                    if id(value) not in defined:
                        if id(value) in global_ids:
                            continue
                        raise VerificationError(
                            f"phi incoming {value.ref()} of {where} is"
                            " not defined in this function"
                        )
                    if (
                        block.name in tree.reachable
                        and pred.name in tree.reachable
                    ):
                        def_block, _ = position[id(value)]
                        if not tree.dominates(def_block, pred.name):
                            raise VerificationError(
                                f"phi incoming {value.ref()} of {where}"
                                f" does not dominate predecessor"
                                f" {pred.name}"
                            )
                if block.name in tree.reachable:
                    missing = set(incoming_preds) - seen_preds
                    if missing:
                        raise VerificationError(
                            f"phi {where} is missing incomings for"
                            f" predecessor(s) {', '.join(sorted(missing))}"
                        )
            else:
                for op in instr.operands:
                    check_use(instr, op, block.name, f"{where}")


def verify_module(module: Module) -> None:
    if not module.functions:
        raise VerificationError(f"module {module.name} has no functions")
    for function in module.functions.values():
        verify_function(function, module)
