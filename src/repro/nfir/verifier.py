"""Structural verifier for NFIR.

Checks the invariants the rest of the system depends on: every block is
terminated exactly once at its end, branch targets belong to the same
function, operands are defined in the function (arguments, constants,
globals, or instructions of this function), and value names are unique.
A full SSA dominance check is intentionally out of scope — the frontend
lowers locals through allocas, so cross-block value flow is rare — but
we do verify that non-phi operands defined by instructions appear in a
block that can reach the use.
"""

from __future__ import annotations

from typing import Set

from repro.nfir.function import Function, Module
from repro.nfir.instructions import Phi
from repro.nfir.values import Argument, Constant


class VerificationError(ValueError):
    pass


def verify_function(function: Function, module: Module | None = None) -> None:
    if not function.blocks:
        raise VerificationError(f"function @{function.name} has no blocks")

    names: Set[str] = set()
    defined: Set[int] = set()
    for arg in function.args:
        defined.add(id(arg))

    global_ids: Set[int] = set()
    if module is not None:
        global_ids = {id(g) for g in module.globals.values()}

    block_names: Set[str] = set()
    for block in function.blocks:
        if block.name in block_names:
            raise VerificationError(
                f"duplicate block name {block.name!r} in @{function.name}"
            )
        block_names.add(block.name)

    for block in function.blocks:
        if not block.is_terminated:
            raise VerificationError(
                f"block {block.name} in @{function.name} is not terminated"
            )
        for i, instr in enumerate(block.instructions):
            if instr.is_terminator and i != len(block.instructions) - 1:
                raise VerificationError(
                    f"terminator mid-block in {block.name} of @{function.name}"
                )
            if instr.produces_value:
                if instr.name is None:
                    raise VerificationError(
                        f"unnamed value-producing {instr.opcode} in @{function.name}"
                    )
                if instr.name in names:
                    raise VerificationError(
                        f"duplicate value name %{instr.name} in @{function.name}"
                    )
                names.add(instr.name)
            defined.add(id(instr))
        for successor in block.successors():
            if successor not in function.blocks:
                raise VerificationError(
                    f"branch from {block.name} to foreign block"
                    f" {successor.name} in @{function.name}"
                )

    # Operand definedness (phis may reference forward definitions).
    for block in function.blocks:
        for instr in block.instructions:
            if isinstance(instr, Phi):
                continue
            for op in instr.operands:
                if isinstance(op, (Constant, Argument)):
                    continue
                if id(op) in defined or id(op) in global_ids:
                    continue
                raise VerificationError(
                    f"operand {op.ref()} of {instr.opcode} in block"
                    f" {block.name} of @{function.name} is not defined"
                    " in this function"
                )


def verify_module(module: Module) -> None:
    if not module.functions:
        raise VerificationError(f"module {module.name} has no functions")
    for function in module.functions.values():
        verify_function(function, module)
