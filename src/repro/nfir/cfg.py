"""Control-flow graph utilities built on networkx.

Clara extracts the CFG during program preparation (Section 3.1) and the
LSTM predictor operates per basic block; the scale-out/coalescing
analyses additionally need block execution frequencies, which the
ClickScript interpreter records against these same block names.
"""

from __future__ import annotations

from typing import Dict, List, Set

import networkx as nx

from repro.nfir.analysis.dominance import DominatorTree
from repro.nfir.block import BasicBlock
from repro.nfir.function import Function


def build_cfg(function: Function) -> "nx.DiGraph":
    """Build a directed graph whose nodes are block names."""
    graph = nx.DiGraph()
    for block in function.blocks:
        graph.add_node(block.name, block=block)
    for block in function.blocks:
        for successor in block.successors():
            graph.add_edge(block.name, successor.name)
    return graph


def reverse_postorder(function: Function) -> List[BasicBlock]:
    """Blocks in reverse postorder from the entry (a topological-ish
    order that visits definitions before most uses)."""
    graph = build_cfg(function)
    order = list(nx.dfs_postorder_nodes(graph, source=function.entry.name))
    order.reverse()
    by_name = {b.name: b for b in function.blocks}
    visited = [by_name[name] for name in order if name in by_name]
    # Unreachable blocks go last, in layout order.
    seen: Set[str] = {b.name for b in visited}
    visited.extend(b for b in function.blocks if b.name not in seen)
    return visited


def reachable_blocks(function: Function) -> Set[str]:
    graph = build_cfg(function)
    return set(nx.descendants(graph, function.entry.name)) | {function.entry.name}


def loop_headers(function: Function) -> Set[str]:
    """Names of blocks that head a natural loop (targets of back edges)."""
    graph = build_cfg(function)
    tree = DominatorTree(function)
    return {
        dst for src, dst in graph.edges if tree.dominates(dst, src)
    }


def natural_loops(function: Function) -> Dict[str, Set[str]]:
    """Natural loop membership: header block name -> set of block
    names in the loop (header included).  Loops sharing a header are
    merged, nested loops appear under their own headers too."""
    graph = build_cfg(function)
    tree = DominatorTree(function)
    loops: Dict[str, Set[str]] = {}
    for src, dst in graph.edges:
        if not tree.dominates(dst, src):
            continue
        body = loops.setdefault(dst, {dst})
        stack = [src]
        while stack:
            node = stack.pop()
            if node in body:
                continue
            body.add(node)
            stack.extend(graph.predecessors(node))
    return loops


def block_depths(function: Function) -> Dict[str, int]:
    """Shortest-path depth of each reachable block from the entry."""
    graph = build_cfg(function)
    lengths = nx.single_source_shortest_path_length(graph, function.entry.name)
    return dict(lengths)
