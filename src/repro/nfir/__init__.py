"""NFIR: a small LLVM-flavoured SSA intermediate representation.

Clara (SOSP '21) lowers legacy network functions to LLVM IR before any
analysis.  NFIR plays that role here: a typed, SSA-style IR with basic
blocks, a control-flow graph, a textual format with a parser/printer
round-trip, a verifier, an inliner, and the instruction-annotation pass
(compute vs. memory vs. framework-API) described in Section 3.1 of the
paper.
"""

from repro.nfir.types import (
    ArrayType,
    IntType,
    IRType,
    PointerType,
    StructType,
    VoidType,
    I1,
    I8,
    I16,
    I32,
    I64,
    VOID,
)
from repro.nfir.values import Argument, Constant, Value
from repro.nfir.instructions import (
    Alloca,
    BinaryOp,
    Br,
    Call,
    Cast,
    CondBr,
    GEP,
    ICmp,
    Instruction,
    Load,
    Phi,
    Ret,
    Select,
    Store,
    BINARY_OPCODES,
    CAST_OPCODES,
    ICMP_PREDICATES,
)
from repro.nfir.block import BasicBlock
from repro.nfir.function import Function, GlobalVariable, Module
from repro.nfir.builder import IRBuilder
from repro.nfir.printer import print_function, print_instruction, print_module
from repro.nfir.parser import parse_module
from repro.nfir.cfg import build_cfg, reverse_postorder
from repro.nfir.verifier import VerificationError, verify_function, verify_module
from repro.nfir.inliner import inline_internal_calls
from repro.nfir.annotate import (
    AnnotatedBlock,
    Category,
    annotate_function,
    annotate_module,
    classify_instruction,
)
from repro.nfir.analysis import (
    Diagnostic,
    DominatorTree,
    LintReport,
    PassRegistry,
    default_registry,
    lint_module,
)

__all__ = [
    "ArrayType",
    "IntType",
    "IRType",
    "PointerType",
    "StructType",
    "VoidType",
    "I1",
    "I8",
    "I16",
    "I32",
    "I64",
    "VOID",
    "Argument",
    "Constant",
    "Value",
    "Alloca",
    "BinaryOp",
    "Br",
    "Call",
    "Cast",
    "CondBr",
    "GEP",
    "ICmp",
    "Instruction",
    "Load",
    "Phi",
    "Ret",
    "Select",
    "Store",
    "BINARY_OPCODES",
    "CAST_OPCODES",
    "ICMP_PREDICATES",
    "BasicBlock",
    "Function",
    "GlobalVariable",
    "Module",
    "IRBuilder",
    "print_function",
    "print_instruction",
    "print_module",
    "parse_module",
    "build_cfg",
    "reverse_postorder",
    "VerificationError",
    "verify_function",
    "verify_module",
    "inline_internal_calls",
    "AnnotatedBlock",
    "Category",
    "annotate_function",
    "annotate_module",
    "classify_instruction",
    "Diagnostic",
    "DominatorTree",
    "LintReport",
    "PassRegistry",
    "default_registry",
    "lint_module",
]
