"""Parser for the NFIR textual format produced by
:mod:`repro.nfir.printer`.

Round-tripping through text gives the synthesis engine a stable on-disk
corpus format and lets tests assert printer/parser agreement.
"""

from __future__ import annotations

import re
from typing import Dict, List, Optional, Tuple

from repro.nfir.block import BasicBlock
from repro.nfir.function import Function, GlobalVariable, Module
from repro.nfir.instructions import (
    Alloca,
    BinaryOp,
    Br,
    Call,
    Cast,
    CondBr,
    GEP,
    ICmp,
    Instruction,
    Load,
    Phi,
    Ret,
    Select,
    Store,
    BINARY_OPCODES,
    CAST_OPCODES,
)
from repro.nfir.types import (
    ArrayType,
    IntType,
    IRType,
    PointerType,
    StructType,
    VOID,
    int_type,
)
from repro.nfir.values import Constant, Value


class ParseError(ValueError):
    def __init__(self, message: str, line_no: Optional[int] = None) -> None:
        if line_no is not None:
            message = f"line {line_no}: {message}"
        super().__init__(message)


_TOKEN_RE = re.compile(
    r"""
    %[A-Za-z_][A-Za-z0-9_.]*   # value / block / struct reference
    | @[A-Za-z_][A-Za-z0-9_.]* # function / global reference
    | \.[A-Za-z_][A-Za-z0-9_]* # GEP field index
    | ![a-z]+                  # call-kind / function attribute
    | -?\d+                    # integer literal
    | [A-Za-z_][A-Za-z0-9_]*   # keyword / opcode / type word
    | [\[\]{}(),=:*]           # punctuation
    """,
    re.VERBOSE,
)


def _tokenize(line: str) -> List[str]:
    tokens = _TOKEN_RE.findall(line)
    remainder = _TOKEN_RE.sub("", line).strip()
    if remainder:
        raise ParseError(f"unexpected characters {remainder!r} in {line!r}")
    return tokens


class _Cursor:
    """A token stream with one-token lookahead."""

    def __init__(self, tokens: List[str], line_no: int) -> None:
        self.tokens = tokens
        self.pos = 0
        self.line_no = line_no

    def peek(self) -> Optional[str]:
        return self.tokens[self.pos] if self.pos < len(self.tokens) else None

    def next(self) -> str:
        token = self.peek()
        if token is None:
            raise ParseError("unexpected end of line", self.line_no)
        self.pos += 1
        return token

    def expect(self, token: str) -> None:
        got = self.next()
        if got != token:
            raise ParseError(f"expected {token!r}, got {got!r}", self.line_no)

    def accept(self, token: str) -> bool:
        if self.peek() == token:
            self.pos += 1
            return True
        return False

    @property
    def exhausted(self) -> bool:
        return self.pos >= len(self.tokens)


class _FunctionScope:
    """Tracks SSA values and blocks while parsing one function."""

    def __init__(self, function: Function) -> None:
        self.function = function
        self.values: Dict[str, Value] = {a.name: a for a in function.args}
        self.blocks: Dict[str, BasicBlock] = {}
        # phi arms may reference not-yet-defined values/blocks.
        self.pending_phis: List[Tuple[Phi, List[Tuple[str, str]]]] = []

    def block(self, name: str) -> BasicBlock:
        if name not in self.blocks:
            self.blocks[name] = self.function.add_block(name)
        return self.blocks[name]

    def define(self, name: str, value: Value) -> None:
        if name in self.values:
            raise ParseError(f"value %{name} redefined")
        self.values[name] = value

    def lookup(self, name: str) -> Value:
        try:
            return self.values[name]
        except KeyError:
            raise ParseError(f"use of undefined value %{name}") from None


class _Parser:
    def __init__(self, text: str) -> None:
        self.lines = text.splitlines()
        self.structs: Dict[str, StructType] = {}
        self.module: Optional[Module] = None

    # -- types -------------------------------------------------------
    def parse_type(self, cursor: _Cursor) -> IRType:
        token = cursor.next()
        base: IRType
        if token == "void":
            base = VOID
        elif re.fullmatch(r"i\d+", token):
            base = int_type(int(token[1:]))
        elif token.startswith("%struct."):
            name = token[len("%struct.") :]
            if name not in self.structs:
                raise ParseError(f"unknown struct {name!r}", cursor.line_no)
            base = self.structs[name]
        elif token == "[":
            count = int(cursor.next())
            cursor.expect("x")
            element = self.parse_type(cursor)
            cursor.expect("]")
            base = ArrayType(element, count)
        else:
            raise ParseError(f"cannot parse type from {token!r}", cursor.line_no)
        while cursor.accept("*"):
            base = PointerType(base)
        return base

    # -- operands ----------------------------------------------------
    def parse_operand(
        self, cursor: _Cursor, type_: IRType, scope: _FunctionScope
    ) -> Value:
        token = cursor.next()
        if token.startswith("%"):
            value = scope.lookup(token[1:])
            if value.type != type_:
                raise ParseError(
                    f"operand {token} has type {value.type}, expected {type_}",
                    cursor.line_no,
                )
            return value
        if token.startswith("@"):
            module = self._require_module(cursor.line_no)
            name = token[1:]
            if name not in module.globals:
                raise ParseError(f"unknown global {token}", cursor.line_no)
            value = module.globals[name]
            if value.type != type_:
                raise ParseError(
                    f"global {token} has type {value.type}, expected {type_}",
                    cursor.line_no,
                )
            return value
        if token == "null":
            if not type_.is_pointer:
                raise ParseError(
                    f"null literal for non-pointer type {type_}", cursor.line_no
                )
            return Constant(type_, 0)
        if re.fullmatch(r"-?\d+", token):
            if not isinstance(type_, IntType):
                raise ParseError(
                    f"integer literal for non-integer type {type_}", cursor.line_no
                )
            return Constant(type_, int(token))
        raise ParseError(f"cannot parse operand {token!r}", cursor.line_no)

    def parse_typed_operand(
        self, cursor: _Cursor, scope: _FunctionScope
    ) -> Value:
        type_ = self.parse_type(cursor)
        return self.parse_operand(cursor, type_, scope)

    # -- top-level ----------------------------------------------------
    def parse(self) -> Module:
        i = 0
        while i < len(self.lines):
            line = self.lines[i].strip()
            i += 1
            if not line or line.startswith(";"):
                continue
            if line.startswith("module"):
                match = re.fullmatch(r'module\s+"([^"]*)"', line)
                if not match:
                    raise ParseError(f"bad module header {line!r}", i)
                self.module = Module(match.group(1))
            elif line.startswith("struct"):
                self._parse_struct(line, i)
            elif line.startswith("global"):
                self._parse_global(line, i)
            elif line.startswith("define"):
                i = self._parse_function(i - 1)
            else:
                raise ParseError(f"unexpected line {line!r}", i)
        if self.module is None:
            raise ParseError("no module header found")
        return self.module

    def _require_module(self, line_no: int) -> Module:
        if self.module is None:
            raise ParseError("declaration before module header", line_no)
        return self.module

    def _parse_struct(self, line: str, line_no: int) -> None:
        cursor = _Cursor(_tokenize(line), line_no)
        cursor.expect("struct")
        token = cursor.next()
        if not token.startswith("%struct."):
            raise ParseError(f"bad struct name {token!r}", line_no)
        name = token[len("%struct.") :]
        cursor.expect("=")
        cursor.expect("{")
        fields: List[Tuple[str, IRType]] = []
        if not cursor.accept("}"):
            while True:
                fname = cursor.next()
                cursor.expect(":")
                ftype = self.parse_type(cursor)
                fields.append((fname, ftype))
                if cursor.accept("}"):
                    break
                cursor.expect(",")
        self.structs[name] = StructType(name, tuple(fields))

    def _parse_global(self, line: str, line_no: int) -> None:
        module = self._require_module(line_no)
        match = re.fullmatch(
            r"global\s+@(\S+)\s*:\s*(.+?)\s+kind=(\w+)\s+entries=(\d+)\s+size=(\d+)",
            line,
        )
        if not match:
            raise ParseError(f"bad global declaration {line!r}", line_no)
        name, type_text, kind, entries, size = match.groups()
        cursor = _Cursor(_tokenize(type_text), line_no)
        value_type = self.parse_type(cursor)
        module.add_global(
            GlobalVariable(
                name,
                value_type,
                kind=kind,
                entries=int(entries),
                size_bytes=int(size),
            )
        )

    def _parse_function(self, start: int) -> int:
        """Parse a function beginning at ``self.lines[start]``; return
        the index just past its closing brace."""
        line_no = start + 1
        module = self._require_module(line_no)
        header = self.lines[start].strip()
        match = re.fullmatch(
            r"define\s+(.+?)\s+@([A-Za-z_][A-Za-z0-9_.]*)\((.*)\)( !api)? \{", header
        )
        if not match:
            raise ParseError(f"bad function header {header!r}", line_no)
        ret_text, name, args_text, api_attr = match.groups()
        ret_type = self.parse_type(_Cursor(_tokenize(ret_text), line_no))
        args: List[Tuple[str, IRType]] = []
        if args_text.strip():
            for arg_text in args_text.split(","):
                cursor = _Cursor(_tokenize(arg_text), line_no)
                arg_type = self.parse_type(cursor)
                arg_name = cursor.next()
                if not arg_name.startswith("%"):
                    raise ParseError(f"bad argument name {arg_name!r}", line_no)
                args.append((arg_name[1:], arg_type))
        function = Function(name, args, ret_type, is_api=api_attr is not None)
        module.add_function(function)
        scope = _FunctionScope(function)

        # Pre-create blocks in label order so printing the parsed module
        # reproduces the source block layout exactly.
        for j in range(start + 1, len(self.lines)):
            body_line = self.lines[j].strip()
            if body_line == "}":
                break
            label = re.fullmatch(r"([A-Za-z_][A-Za-z0-9_.]*):", body_line)
            if label:
                scope.block(label.group(1))

        current: Optional[BasicBlock] = None
        i = start + 1
        while i < len(self.lines):
            line = self.lines[i].strip()
            line_no = i + 1
            i += 1
            if not line or line.startswith(";"):
                continue
            if line == "}":
                self._resolve_phis(scope)
                return i
            label = re.fullmatch(r"([A-Za-z_][A-Za-z0-9_.]*):", line)
            if label:
                current = scope.block(label.group(1))
                continue
            if current is None:
                raise ParseError("instruction before first block label", line_no)
            instr = self._parse_instruction(line, line_no, scope)
            current.append(instr)
        raise ParseError(f"function @{name} not closed", line_no)

    def _resolve_phis(self, scope: _FunctionScope) -> None:
        for phi, arms in scope.pending_phis:
            for value_token, block_name in arms:
                if value_token.startswith("%"):
                    value = scope.lookup(value_token[1:])
                else:
                    value = Constant(phi.type, int(value_token))  # type: ignore[arg-type]
                phi.add_incoming(value, scope.block(block_name))

    # -- instructions --------------------------------------------------
    def _parse_instruction(
        self, line: str, line_no: int, scope: _FunctionScope
    ) -> Instruction:
        cursor = _Cursor(_tokenize(line), line_no)
        result: Optional[str] = None
        token = cursor.peek()
        if token and token.startswith("%") and cursor.tokens[1:2] == ["="]:
            result = cursor.next()[1:]
            cursor.expect("=")
        instr = self._parse_instruction_body(cursor, scope)
        if result is not None:
            if not instr.produces_value:
                raise ParseError("void instruction assigned to a value", line_no)
            instr.name = result
            scope.define(result, instr)
        if not cursor.exhausted:
            raise ParseError(
                f"trailing tokens {cursor.tokens[cursor.pos:]!r}", line_no
            )
        return instr

    def _parse_instruction_body(
        self, cursor: _Cursor, scope: _FunctionScope
    ) -> Instruction:
        opcode = cursor.next()
        if opcode in BINARY_OPCODES:
            type_ = self.parse_type(cursor)
            lhs = self.parse_operand(cursor, type_, scope)
            cursor.expect(",")
            rhs = self.parse_operand(cursor, type_, scope)
            return BinaryOp(opcode, lhs, rhs)
        if opcode == "icmp":
            predicate = cursor.next()
            type_ = self.parse_type(cursor)
            lhs = self.parse_operand(cursor, type_, scope)
            cursor.expect(",")
            rhs = self.parse_operand(cursor, type_, scope)
            return ICmp(predicate, lhs, rhs)
        if opcode == "select":
            cond = self.parse_typed_operand(cursor, scope)
            cursor.expect(",")
            if_true = self.parse_typed_operand(cursor, scope)
            cursor.expect(",")
            if_false = self.parse_typed_operand(cursor, scope)
            return Select(cond, if_true, if_false)
        if opcode in CAST_OPCODES:
            value = self.parse_typed_operand(cursor, scope)
            cursor.expect("to")
            to_type = self.parse_type(cursor)
            return Cast(opcode, value, to_type)
        if opcode == "alloca":
            return Alloca(self.parse_type(cursor))
        if opcode == "load":
            self.parse_type(cursor)  # result type, implied by pointer
            cursor.expect(",")
            ptr = self.parse_typed_operand(cursor, scope)
            return Load(ptr)
        if opcode == "store":
            value = self.parse_typed_operand(cursor, scope)
            cursor.expect(",")
            ptr = self.parse_typed_operand(cursor, scope)
            return Store(value, ptr)
        if opcode == "getelementptr":
            base = self.parse_typed_operand(cursor, scope)
            indices: List[object] = []
            while cursor.accept(","):
                token = cursor.peek()
                if token is not None and token.startswith("."):
                    indices.append(cursor.next()[1:])
                else:
                    indices.append(self.parse_typed_operand(cursor, scope))
            return GEP(base, indices)
        if opcode == "call":
            ret_type = self.parse_type(cursor)
            callee = cursor.next()
            if not callee.startswith("@"):
                raise ParseError(f"bad callee {callee!r}", cursor.line_no)
            cursor.expect("(")
            args: List[Value] = []
            if not cursor.accept(")"):
                while True:
                    args.append(self.parse_typed_operand(cursor, scope))
                    if cursor.accept(")"):
                        break
                    cursor.expect(",")
            kind_token = cursor.next()
            if not kind_token.startswith("!"):
                raise ParseError(f"missing call kind, got {kind_token!r}", cursor.line_no)
            return Call(callee[1:], args, ret_type, kind=kind_token[1:])
        if opcode == "br":
            if cursor.peek() == "label":
                cursor.next()
                target = cursor.next()
                return Br(scope.block(target[1:]))
            type_ = self.parse_type(cursor)
            cond = self.parse_operand(cursor, type_, scope)
            cursor.expect(",")
            cursor.expect("label")
            if_true = cursor.next()
            cursor.expect(",")
            cursor.expect("label")
            if_false = cursor.next()
            return CondBr(cond, scope.block(if_true[1:]), scope.block(if_false[1:]))
        if opcode == "ret":
            if cursor.peek() == "void":
                cursor.next()
                return Ret(None)
            return Ret(self.parse_typed_operand(cursor, scope))
        if opcode == "phi":
            type_ = self.parse_type(cursor)
            phi = Phi(type_)
            arms: List[Tuple[str, str]] = []
            while cursor.accept("["):
                value_token = cursor.next()
                cursor.expect(",")
                block_token = cursor.next()
                cursor.expect("]")
                arms.append((value_token, block_token[1:]))
                cursor.accept(",")
            scope.pending_phis.append((phi, arms))
            return phi
        raise ParseError(f"unknown opcode {opcode!r}", cursor.line_no)


def parse_module(text: str) -> Module:
    """Parse the textual NFIR format back into a :class:`Module`."""
    return _Parser(text).parse()
