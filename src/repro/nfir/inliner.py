"""Inlining of internal NF subroutines.

Section 3.1: "Subroutines in the NF that do not depend on the host
framework are directly inlined."  Framework API calls (``kind=api``)
are left intact — they are handled by reverse porting — and intrinsics
are left for the SmartNIC compiler.

The inliner follows the classic -O0 recipe: split the call block, clone
the callee with fresh value/block names, route every ``ret`` through a
return slot (an alloca in the caller entry), and replace the call's
value with a load from that slot.
"""

from __future__ import annotations

import copy
from typing import Dict, List, Optional, Tuple

from repro.nfir.block import BasicBlock
from repro.nfir.function import Function, Module
from repro.nfir.instructions import (
    Alloca,
    Br,
    Call,
    CondBr,
    Instruction,
    Load,
    Phi,
    Ret,
    Store,
    CALL_KIND_INTERNAL,
)
from repro.nfir.values import Value


class InlineError(ValueError):
    pass


def _clone_instruction(instr: Instruction) -> Instruction:
    clone = copy.copy(instr)
    clone.parent = None
    clone.meta = dict(instr.meta)
    if isinstance(instr, Phi):
        clone.incomings = list(instr.incomings)
    if isinstance(instr, Call):
        clone.args = list(instr.args)
    return clone


def _find_internal_call(
    function: Function, module: Module
) -> Optional[Tuple[BasicBlock, int, Call]]:
    for block in function.blocks:
        for i, instr in enumerate(block.instructions):
            if (
                isinstance(instr, Call)
                and instr.kind == CALL_KIND_INTERNAL
                and instr.callee in module.functions
            ):
                return block, i, instr
    return None


def _inline_one(caller: Function, block: BasicBlock, index: int, call: Call,
                module: Module) -> None:
    callee = module.functions[call.callee]
    if callee is caller:
        raise InlineError(f"cannot inline recursive call to @{callee.name}")
    if len(call.args) != len(callee.args):
        raise InlineError(
            f"call to @{callee.name} passes {len(call.args)} args,"
            f" expected {len(callee.args)}"
        )

    # 1. Split the call block: instructions after the call move to a
    #    continuation block.
    tail = caller.add_block(caller.next_value_name("inlcont."))
    tail.instructions = block.instructions[index + 1 :]
    for moved in tail.instructions:
        moved.parent = tail
    block.instructions = block.instructions[:index]

    # Branch targets elsewhere still point at `block`; that is correct
    # because `block` now falls through into the inlined body.

    # 2. Return slot for non-void callees.
    ret_slot: Optional[Alloca] = None
    if not callee.ret_type.is_void:
        ret_slot = Alloca(callee.ret_type, caller.next_value_name("retslot."))
        entry = caller.entry
        ret_slot.parent = entry
        entry.instructions.insert(0, ret_slot)

    # 3. Clone callee blocks with fresh names.
    value_map: Dict[Value, Value] = {}
    for formal, actual in zip(callee.args, call.args):
        value_map[formal] = actual
    block_map: Dict[BasicBlock, BasicBlock] = {}
    for src in callee.blocks:
        block_map[src] = caller.add_block(
            caller.next_value_name(f"inl.{callee.name}.")
        )
    cloned: List[Tuple[Instruction, Instruction]] = []
    for src in callee.blocks:
        dst = block_map[src]
        for instr in src.instructions:
            clone = _clone_instruction(instr)
            if clone.produces_value:
                clone.name = caller.next_value_name("i")
                value_map[instr] = clone
            clone.parent = dst
            dst.instructions.append(clone)
            cloned.append((instr, clone))

    # 4. Rewrite operands and block references inside the clones.
    for _, clone in cloned:
        clone.replace_operands(value_map)
        if isinstance(clone, Br):
            clone.target = block_map.get(clone.target, clone.target)
        elif isinstance(clone, CondBr):
            clone.if_true = block_map.get(clone.if_true, clone.if_true)
            clone.if_false = block_map.get(clone.if_false, clone.if_false)
        elif isinstance(clone, Phi):
            clone.incomings = [
                (v, block_map.get(b, b)) for v, b in clone.incomings
            ]

    # 5. Turn every cloned ret into (store to slot +) branch to tail.
    for dst in block_map.values():
        if dst.instructions and isinstance(dst.instructions[-1], Ret):
            ret = dst.instructions.pop()
            if ret_slot is not None:
                if ret.value is None:
                    raise InlineError(
                        f"@{callee.name} returns void on some path but has"
                        f" return type {callee.ret_type}"
                    )
                store = Store(ret.value, ret_slot)
                store.parent = dst
                dst.instructions.append(store)
            br = Br(tail)
            br.parent = dst
            dst.instructions.append(br)

    # 6. Jump from the (truncated) call block into the inlined entry.
    entry_clone = block_map[callee.entry]
    br = Br(entry_clone)
    br.parent = block
    block.instructions.append(br)

    # 7. Replace uses of the call's result with a load from the slot.
    if ret_slot is not None:
        load = Load(ret_slot, caller.next_value_name("retval."))
        load.parent = tail
        tail.instructions.insert(0, load)
        replacement: Dict[Value, Value] = {call: load}
        for b in caller.blocks:
            for instr in b.instructions:
                instr.replace_operands(replacement)


def inline_internal_calls(
    module: Module, function_name: str = "pkt_handler", max_inlines: int = 200
) -> int:
    """Inline internal calls within one function; returns the number of
    call sites inlined.  Raises :class:`InlineError` on recursion or if
    ``max_inlines`` is exceeded (a cycle guard)."""
    function = module.get_function(function_name)
    count = 0
    while count < max_inlines:
        found = _find_internal_call(function, module)
        if found is None:
            return count
        block, index, call = found
        _inline_one(function, block, index, call, module)
        count += 1
    raise InlineError(
        f"@{function_name} still has internal calls after {max_inlines} inlines"
    )
