"""NFIR instruction set.

The opcode inventory is a faithful subset of LLVM's: integer binary
arithmetic/logic, integer comparisons, ``select``, width casts, stack
allocation, loads/stores, ``getelementptr``-style field addressing,
calls, and the usual terminators.  Clara's analyses (paper Section 3.1)
only need to distinguish compute instructions, memory accesses, and
framework API calls, but keeping the full shape of each instruction lets
the "opaque" SmartNIC compiler in :mod:`repro.nic.compiler` perform the
realistic instruction selection and fusion the paper's LSTM must learn.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple, TYPE_CHECKING

from repro.nfir.types import IntType, IRType, PointerType, StructType, VOID, I1
from repro.nfir.values import Value

if TYPE_CHECKING:  # pragma: no cover
    from repro.nfir.block import BasicBlock

BINARY_OPCODES = (
    "add",
    "sub",
    "mul",
    "udiv",
    "sdiv",
    "urem",
    "srem",
    "and",
    "or",
    "xor",
    "shl",
    "lshr",
    "ashr",
)

CAST_OPCODES = ("zext", "sext", "trunc", "bitcast")

ICMP_PREDICATES = (
    "eq",
    "ne",
    "ult",
    "ule",
    "ugt",
    "uge",
    "slt",
    "sle",
    "sgt",
    "sge",
)

# Calls are tagged by how the analysis must treat them (Section 3.1/3.3).
CALL_KIND_API = "api"  # host framework API, handled by reverse porting
CALL_KIND_INTERNAL = "internal"  # NF subroutine, inlined before analysis
CALL_KIND_INTRINSIC = "intrinsic"  # low-level helper with known NIC cost


class Instruction(Value):
    """Base class of all instructions.  Instructions that produce a
    value are themselves :class:`Value` s (SSA style)."""

    opcode: str = "?"

    def __init__(self, type_: IRType, name: Optional[str] = None) -> None:
        super().__init__(type_, name)
        self.parent: Optional["BasicBlock"] = None
        self.meta: Dict[str, object] = {}

    @property
    def operands(self) -> List[Value]:
        return []

    def replace_operands(self, mapping: Dict[Value, Value]) -> None:
        """Rewrite operands according to ``mapping`` (used by the
        inliner and by peephole rewrites)."""
        raise NotImplementedError

    @property
    def is_terminator(self) -> bool:
        return isinstance(self, (Br, CondBr, Ret))

    @property
    def produces_value(self) -> bool:
        return not self.type.is_void


def _subst(value: Value, mapping: Dict[Value, Value]) -> Value:
    return mapping.get(value, value)


class BinaryOp(Instruction):
    def __init__(
        self, opcode: str, lhs: Value, rhs: Value, name: Optional[str] = None
    ) -> None:
        if opcode not in BINARY_OPCODES:
            raise ValueError(f"unknown binary opcode {opcode!r}")
        if lhs.type != rhs.type:
            raise TypeError(
                f"binary op {opcode} operand types differ: {lhs.type} vs {rhs.type}"
            )
        super().__init__(lhs.type, name)
        self.opcode = opcode
        self.lhs = lhs
        self.rhs = rhs

    @property
    def operands(self) -> List[Value]:
        return [self.lhs, self.rhs]

    def replace_operands(self, mapping: Dict[Value, Value]) -> None:
        self.lhs = _subst(self.lhs, mapping)
        self.rhs = _subst(self.rhs, mapping)


class ICmp(Instruction):
    opcode = "icmp"

    def __init__(
        self, predicate: str, lhs: Value, rhs: Value, name: Optional[str] = None
    ) -> None:
        if predicate not in ICMP_PREDICATES:
            raise ValueError(f"unknown icmp predicate {predicate!r}")
        if lhs.type != rhs.type:
            raise TypeError(
                f"icmp operand types differ: {lhs.type} vs {rhs.type}"
            )
        if lhs.type.is_pointer and predicate not in ("eq", "ne"):
            raise TypeError("pointer comparison must be eq or ne")
        super().__init__(I1, name)
        self.predicate = predicate
        self.lhs = lhs
        self.rhs = rhs

    @property
    def operands(self) -> List[Value]:
        return [self.lhs, self.rhs]

    def replace_operands(self, mapping: Dict[Value, Value]) -> None:
        self.lhs = _subst(self.lhs, mapping)
        self.rhs = _subst(self.rhs, mapping)


class Select(Instruction):
    opcode = "select"

    def __init__(
        self, cond: Value, if_true: Value, if_false: Value, name: Optional[str] = None
    ) -> None:
        if if_true.type != if_false.type:
            raise TypeError("select arms must have the same type")
        super().__init__(if_true.type, name)
        self.cond = cond
        self.if_true = if_true
        self.if_false = if_false

    @property
    def operands(self) -> List[Value]:
        return [self.cond, self.if_true, self.if_false]

    def replace_operands(self, mapping: Dict[Value, Value]) -> None:
        self.cond = _subst(self.cond, mapping)
        self.if_true = _subst(self.if_true, mapping)
        self.if_false = _subst(self.if_false, mapping)


class Cast(Instruction):
    def __init__(
        self, opcode: str, value: Value, to_type: IRType, name: Optional[str] = None
    ) -> None:
        if opcode not in CAST_OPCODES:
            raise ValueError(f"unknown cast opcode {opcode!r}")
        if opcode in ("zext", "sext"):
            if not (value.type.is_integer and to_type.is_integer):
                raise TypeError(f"{opcode} requires integer types")
            if to_type.size_bytes() * 8 < value.type.bits:  # type: ignore[union-attr]
                raise TypeError(f"{opcode} must widen, not narrow")
        if opcode == "trunc":
            if not (value.type.is_integer and to_type.is_integer):
                raise TypeError("trunc requires integer types")
        super().__init__(to_type, name)
        self.opcode = opcode
        self.value = value

    @property
    def operands(self) -> List[Value]:
        return [self.value]

    def replace_operands(self, mapping: Dict[Value, Value]) -> None:
        self.value = _subst(self.value, mapping)


class Alloca(Instruction):
    """Stack allocation of a function-local variable.

    Per the paper, locals are *stateless*: they are temporary per-packet
    storage, and the SmartNIC compiler's register allocator generally
    keeps them out of memory entirely (Section 3.2).
    """

    opcode = "alloca"

    def __init__(self, allocated_type: IRType, name: Optional[str] = None) -> None:
        super().__init__(PointerType(allocated_type), name)
        self.allocated_type = allocated_type

    def replace_operands(self, mapping: Dict[Value, Value]) -> None:
        pass


class Load(Instruction):
    opcode = "load"

    def __init__(self, ptr: Value, name: Optional[str] = None) -> None:
        if not ptr.type.is_pointer:
            raise TypeError(f"load requires a pointer operand, got {ptr.type}")
        super().__init__(ptr.type.pointee, name)  # type: ignore[union-attr]
        self.ptr = ptr

    @property
    def operands(self) -> List[Value]:
        return [self.ptr]

    def replace_operands(self, mapping: Dict[Value, Value]) -> None:
        self.ptr = _subst(self.ptr, mapping)


class Store(Instruction):
    opcode = "store"

    def __init__(self, value: Value, ptr: Value) -> None:
        if not ptr.type.is_pointer:
            raise TypeError(f"store requires a pointer target, got {ptr.type}")
        if ptr.type.pointee != value.type:  # type: ignore[union-attr]
            raise TypeError(
                f"store type mismatch: {value.type} into {ptr.type}"
            )
        super().__init__(VOID)
        self.value = value
        self.ptr = ptr

    @property
    def operands(self) -> List[Value]:
        return [self.value, self.ptr]

    def replace_operands(self, mapping: Dict[Value, Value]) -> None:
        self.value = _subst(self.value, mapping)
        self.ptr = _subst(self.ptr, mapping)


class GEP(Instruction):
    """Address computation: struct-field or array-element addressing.

    ``indices`` alternates between struct field names (``str``) and
    array index values (:class:`Value`), walked from the base pointee
    type.  This is deliberately higher level than LLVM's integer GEP
    indices — it keeps field names visible for Clara's vocabulary
    compaction, which preserves "well-defined header field names"
    (Section 3.2).
    """

    opcode = "getelementptr"

    def __init__(
        self,
        base: Value,
        indices: Sequence[object],
        name: Optional[str] = None,
    ) -> None:
        if not base.type.is_pointer:
            raise TypeError("GEP base must be a pointer")
        pointee = base.type.pointee  # type: ignore[union-attr]
        for idx in indices:
            if isinstance(idx, str):
                if not isinstance(pointee, StructType):
                    raise TypeError(
                        f"field index {idx!r} into non-struct type {pointee}"
                    )
                pointee = pointee.field_type(idx)
            elif isinstance(idx, Value):
                from repro.nfir.types import ArrayType

                if not isinstance(pointee, ArrayType):
                    raise TypeError(f"array index into non-array type {pointee}")
                pointee = pointee.element
            else:
                raise TypeError(f"bad GEP index {idx!r}")
        super().__init__(PointerType(pointee), name)
        self.base = base
        self.indices: List[object] = list(indices)

    @property
    def operands(self) -> List[Value]:
        ops: List[Value] = [self.base]
        ops.extend(i for i in self.indices if isinstance(i, Value))
        return ops

    def replace_operands(self, mapping: Dict[Value, Value]) -> None:
        self.base = _subst(self.base, mapping)
        self.indices = [
            _subst(i, mapping) if isinstance(i, Value) else i for i in self.indices
        ]


class Call(Instruction):
    opcode = "call"

    def __init__(
        self,
        callee: str,
        args: Sequence[Value],
        ret_type: IRType,
        kind: str = CALL_KIND_INTERNAL,
        name: Optional[str] = None,
    ) -> None:
        if kind not in (CALL_KIND_API, CALL_KIND_INTERNAL, CALL_KIND_INTRINSIC):
            raise ValueError(f"unknown call kind {kind!r}")
        super().__init__(ret_type, name)
        self.callee = callee
        self.args: List[Value] = list(args)
        self.kind = kind

    @property
    def operands(self) -> List[Value]:
        return list(self.args)

    def replace_operands(self, mapping: Dict[Value, Value]) -> None:
        self.args = [_subst(a, mapping) for a in self.args]


class Br(Instruction):
    opcode = "br"

    def __init__(self, target: "BasicBlock") -> None:
        super().__init__(VOID)
        self.target = target

    def replace_operands(self, mapping: Dict[Value, Value]) -> None:
        pass

    def successors(self) -> List["BasicBlock"]:
        return [self.target]


class CondBr(Instruction):
    opcode = "condbr"

    def __init__(
        self, cond: Value, if_true: "BasicBlock", if_false: "BasicBlock"
    ) -> None:
        super().__init__(VOID)
        self.cond = cond
        self.if_true = if_true
        self.if_false = if_false

    @property
    def operands(self) -> List[Value]:
        return [self.cond]

    def replace_operands(self, mapping: Dict[Value, Value]) -> None:
        self.cond = _subst(self.cond, mapping)

    def successors(self) -> List["BasicBlock"]:
        return [self.if_true, self.if_false]


class Ret(Instruction):
    opcode = "ret"

    def __init__(self, value: Optional[Value] = None) -> None:
        super().__init__(VOID)
        self.value = value

    @property
    def operands(self) -> List[Value]:
        return [] if self.value is None else [self.value]

    def replace_operands(self, mapping: Dict[Value, Value]) -> None:
        if self.value is not None:
            self.value = _subst(self.value, mapping)


class Phi(Instruction):
    """SSA phi node.  The ClickScript frontend lowers locals through
    allocas (matching Clara's use of mostly-unoptimized LLVM IR), so
    phis appear only in hand-built or optimizer-produced IR."""

    opcode = "phi"

    def __init__(
        self,
        type_: IRType,
        incomings: Sequence[Tuple[Value, "BasicBlock"]] = (),
        name: Optional[str] = None,
    ) -> None:
        super().__init__(type_, name)
        self.incomings: List[Tuple[Value, "BasicBlock"]] = list(incomings)

    def add_incoming(self, value: Value, block: "BasicBlock") -> None:
        self.incomings.append((value, block))

    @property
    def operands(self) -> List[Value]:
        return [v for v, _ in self.incomings]

    def replace_operands(self, mapping: Dict[Value, Value]) -> None:
        self.incomings = [(_subst(v, mapping), b) for v, b in self.incomings]


def evaluate_binary(opcode: str, type_: IntType, lhs: int, rhs: int) -> int:
    """Constant-fold a binary op on unsigned-wrapped integers.

    Shared by the IR constant folder, the SmartNIC compiler's peephole
    pass, and the ClickScript interpreter so all three agree on
    arithmetic semantics (wrapping, division by zero yields 0 as on the
    NFP's software-divide helper).
    """
    bits = type_.bits
    mask = type_.max_unsigned()
    lhs &= mask
    rhs &= mask
    if opcode == "add":
        return (lhs + rhs) & mask
    if opcode == "sub":
        return (lhs - rhs) & mask
    if opcode == "mul":
        return (lhs * rhs) & mask
    if opcode == "udiv":
        return (lhs // rhs) & mask if rhs else 0
    if opcode == "sdiv":
        sl, sr = type_.to_signed(lhs), type_.to_signed(rhs)
        if sr == 0:
            return 0
        q = abs(sl) // abs(sr)
        if (sl < 0) != (sr < 0):
            q = -q
        return q & mask
    if opcode == "urem":
        return (lhs % rhs) & mask if rhs else 0
    if opcode == "srem":
        sl, sr = type_.to_signed(lhs), type_.to_signed(rhs)
        if sr == 0:
            return 0
        r = abs(sl) % abs(sr)
        if sl < 0:
            r = -r
        return r & mask
    if opcode == "and":
        return lhs & rhs
    if opcode == "or":
        return lhs | rhs
    if opcode == "xor":
        return lhs ^ rhs
    if opcode == "shl":
        return (lhs << (rhs % bits)) & mask
    if opcode == "lshr":
        return (lhs >> (rhs % bits)) & mask
    if opcode == "ashr":
        return type_.wrap(type_.to_signed(lhs) >> (rhs % bits))
    raise ValueError(f"unknown binary opcode {opcode!r}")


def evaluate_icmp(predicate: str, type_: IntType, lhs: int, rhs: int) -> int:
    """Evaluate an integer comparison; returns 0 or 1."""
    ul, ur = type_.wrap(lhs), type_.wrap(rhs)
    sl, sr = type_.to_signed(lhs), type_.to_signed(rhs)
    table = {
        "eq": ul == ur,
        "ne": ul != ur,
        "ult": ul < ur,
        "ule": ul <= ur,
        "ugt": ul > ur,
        "uge": ul >= ur,
        "slt": sl < sr,
        "sle": sl <= sr,
        "sgt": sl > sr,
        "sge": sl >= sr,
    }
    return int(table[predicate])
