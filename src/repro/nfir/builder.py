"""Convenience builder for constructing NFIR, in the style of LLVM's
``IRBuilder``.  All value names are generated per-function so printed
modules are stable and parseable.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.nfir.block import BasicBlock
from repro.nfir.function import Function
from repro.nfir.instructions import (
    Alloca,
    BinaryOp,
    Br,
    Call,
    Cast,
    CondBr,
    GEP,
    ICmp,
    Instruction,
    Load,
    Phi,
    Ret,
    Select,
    Store,
    CALL_KIND_INTERNAL,
)
from repro.nfir.types import IntType, IRType
from repro.nfir.values import Constant, Value


class IRBuilder:
    def __init__(self, function: Function, block: Optional[BasicBlock] = None) -> None:
        self.function = function
        self.block = block if block is not None else function.entry

    def position_at_end(self, block: BasicBlock) -> None:
        self.block = block

    def _emit(self, instr: Instruction, name_prefix: str = "v") -> Instruction:
        if instr.produces_value and instr.name is None:
            instr.name = self.function.next_value_name(name_prefix)
        self.block.append(instr)
        return instr

    # -- arithmetic -------------------------------------------------
    def binop(self, opcode: str, lhs: Value, rhs: Value) -> Instruction:
        return self._emit(BinaryOp(opcode, lhs, rhs))

    def add(self, lhs: Value, rhs: Value) -> Instruction:
        return self.binop("add", lhs, rhs)

    def sub(self, lhs: Value, rhs: Value) -> Instruction:
        return self.binop("sub", lhs, rhs)

    def mul(self, lhs: Value, rhs: Value) -> Instruction:
        return self.binop("mul", lhs, rhs)

    def and_(self, lhs: Value, rhs: Value) -> Instruction:
        return self.binop("and", lhs, rhs)

    def or_(self, lhs: Value, rhs: Value) -> Instruction:
        return self.binop("or", lhs, rhs)

    def xor(self, lhs: Value, rhs: Value) -> Instruction:
        return self.binop("xor", lhs, rhs)

    def shl(self, lhs: Value, rhs: Value) -> Instruction:
        return self.binop("shl", lhs, rhs)

    def lshr(self, lhs: Value, rhs: Value) -> Instruction:
        return self.binop("lshr", lhs, rhs)

    def icmp(self, predicate: str, lhs: Value, rhs: Value) -> Instruction:
        return self._emit(ICmp(predicate, lhs, rhs))

    def select(self, cond: Value, if_true: Value, if_false: Value) -> Instruction:
        return self._emit(Select(cond, if_true, if_false))

    def cast(self, opcode: str, value: Value, to_type: IRType) -> Instruction:
        return self._emit(Cast(opcode, value, to_type))

    def zext(self, value: Value, to_type: IRType) -> Instruction:
        return self.cast("zext", value, to_type)

    def trunc(self, value: Value, to_type: IRType) -> Instruction:
        return self.cast("trunc", value, to_type)

    # -- memory -----------------------------------------------------
    def alloca(self, allocated_type: IRType, name: Optional[str] = None) -> Instruction:
        instr = Alloca(allocated_type, name)
        return self._emit(instr, name_prefix="slot")

    def load(self, ptr: Value) -> Instruction:
        return self._emit(Load(ptr))

    def store(self, value: Value, ptr: Value) -> Instruction:
        return self._emit(Store(value, ptr))

    def gep(self, base: Value, indices: Sequence[object]) -> Instruction:
        return self._emit(GEP(base, indices), name_prefix="p")

    # -- calls / control --------------------------------------------
    def call(
        self,
        callee: str,
        args: Sequence[Value],
        ret_type: IRType,
        kind: str = CALL_KIND_INTERNAL,
    ) -> Instruction:
        return self._emit(Call(callee, args, ret_type, kind))

    def br(self, target: BasicBlock) -> Instruction:
        return self._emit(Br(target))

    def cond_br(
        self, cond: Value, if_true: BasicBlock, if_false: BasicBlock
    ) -> Instruction:
        return self._emit(CondBr(cond, if_true, if_false))

    def ret(self, value: Optional[Value] = None) -> Instruction:
        return self._emit(Ret(value))

    def phi(self, type_: IRType) -> Phi:
        instr = Phi(type_)
        self._emit(instr)
        return instr

    # -- constants ---------------------------------------------------
    @staticmethod
    def const(type_: IntType, value: int) -> Constant:
        return Constant(type_, value)
