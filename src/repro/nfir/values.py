"""Value hierarchy for NFIR: constants, arguments, and (via subclassing
in :mod:`repro.nfir.instructions`) instructions that produce results.
"""

from __future__ import annotations

from typing import Optional

from repro.nfir.types import IntType, IRType


class Value:
    """Anything that can appear as an instruction operand."""

    def __init__(self, type_: IRType, name: Optional[str] = None) -> None:
        self.type = type_
        self.name = name

    def ref(self) -> str:
        """Textual reference to this value (``%name`` / literal)."""
        return f"%{self.name}" if self.name is not None else "%<unnamed>"

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{type(self).__name__} {self.ref()}: {self.type}>"


class Constant(Value):
    """An integer or null-pointer constant.  Integers are stored
    unsigned-wrapped to their type width; the only pointer constant is
    null (value 0)."""

    def __init__(self, type_: IRType, value: int) -> None:
        super().__init__(type_)
        if isinstance(type_, IntType):
            value = type_.wrap(int(value))
        elif type_.is_pointer and int(value) != 0:
            raise ValueError("the only pointer constant is null")
        self.value = int(value)

    @property
    def is_null(self) -> bool:
        return self.type.is_pointer and self.value == 0

    def ref(self) -> str:
        return "null" if self.is_null else str(self.value)

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, Constant)
            and other.type == self.type
            and other.value == self.value
        )

    def __hash__(self) -> int:
        return hash((self.type, self.value))


class Argument(Value):
    """A formal function parameter."""

    def __init__(self, type_: IRType, name: str, index: int) -> None:
        super().__init__(type_, name)
        self.index = index
