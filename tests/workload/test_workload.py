"""Workload spec, trace generation, and cache-character tests."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.workload import (
    LARGE_FLOWS,
    SMALL_FLOWS,
    characterize,
    generate_trace,
)
from repro.workload.character import zipf_hit_rate
from repro.workload.spec import WorkloadSpec


class TestSpec:
    def test_validation(self):
        with pytest.raises(ValueError):
            WorkloadSpec(n_flows=0)
        with pytest.raises(ValueError):
            WorkloadSpec(syn_fraction=1.5)
        with pytest.raises(ValueError):
            WorkloadSpec(packet_bytes=10)

    def test_standard_workloads_differ_in_flows_not_size(self):
        assert LARGE_FLOWS.n_flows < SMALL_FLOWS.n_flows
        assert LARGE_FLOWS.packet_bytes == SMALL_FLOWS.packet_bytes


class TestTrace:
    def test_deterministic_under_seed(self):
        spec = WorkloadSpec(n_packets=50)
        a = generate_trace(spec, seed=1)
        b = generate_trace(spec, seed=1)
        assert [p.flow_key() for p in a] == [p.flow_key() for p in b]

    def test_different_seeds_differ(self):
        spec = WorkloadSpec(n_packets=50)
        a = generate_trace(spec, seed=1)
        b = generate_trace(spec, seed=2)
        assert [p.flow_key() for p in a] != [p.flow_key() for p in b]

    def test_flow_count_respected(self):
        spec = WorkloadSpec(n_flows=5, n_packets=300, zipf_alpha=0.0)
        trace = generate_trace(spec, seed=0)
        flows = {p.flow_key() for p in trace}
        assert len(flows) <= 5

    def test_zipf_skews_popularity(self):
        spec = WorkloadSpec(n_flows=100, n_packets=2000, zipf_alpha=1.5)
        trace = generate_trace(spec, seed=0)
        from collections import Counter

        counts = Counter(p.flow_key() for p in trace)
        top = counts.most_common(1)[0][1]
        assert top > 2000 / 100 * 5  # far above uniform share

    def test_udp_fraction(self):
        spec = WorkloadSpec(n_packets=300, udp_fraction=1.0)
        trace = generate_trace(spec, seed=0)
        assert all(p.udp is not None for p in trace)
        spec = WorkloadSpec(n_packets=300, udp_fraction=0.0)
        trace = generate_trace(spec, seed=0)
        assert all(p.tcp is not None for p in trace)

    def test_syn_fraction_roughly_respected(self):
        spec = WorkloadSpec(n_packets=1000, syn_fraction=0.5)
        trace = generate_trace(spec, seed=0)
        syns = sum(1 for p in trace if p.tcp["th_flags"] == 0x02)
        assert 350 < syns < 650

    def test_payload_lengths(self):
        spec = WorkloadSpec(n_packets=10, payload_bytes=77)
        trace = generate_trace(spec, seed=0)
        assert all(len(p.payload) == 77 for p in trace)

    def test_timestamps_advance(self):
        trace = generate_trace(WorkloadSpec(n_packets=10), seed=0)
        stamps = [p.timestamp_ns for p in trace]
        assert stamps == sorted(stamps)
        assert stamps[1] > stamps[0]


class TestCharacter:
    def test_hit_rate_bounds(self):
        assert zipf_hit_rate(10, 100, 1.0) <= 1.0
        assert zipf_hit_rate(100, 100, 1.0) == 1.0
        assert zipf_hit_rate(0, 100, 1.0) == 0.0

    def test_skew_raises_hit_rate(self):
        uniform = zipf_hit_rate(10, 1000, 0.0)
        skewed = zipf_hit_rate(10, 1000, 1.2)
        assert skewed > uniform

    @given(
        entries=st.integers(min_value=1, max_value=10_000),
        flows=st.integers(min_value=1, max_value=100_000),
        alpha=st.floats(min_value=0.0, max_value=2.0),
    )
    @settings(max_examples=25, deadline=None)
    def test_hit_rate_in_unit_interval(self, entries, flows, alpha):
        rate = zipf_hit_rate(entries, flows, alpha)
        assert 0.0 <= rate <= 1.0

    def test_large_flows_cache_friendly(self):
        large = characterize(LARGE_FLOWS)
        small = characterize(SMALL_FLOWS)
        assert large.emem_cache_hit_rate > small.emem_cache_hit_rate
        assert large.flow_cache_hit_rate > small.flow_cache_hit_rate

    def test_bigger_state_entries_lower_hit_rate(self):
        a = characterize(SMALL_FLOWS, state_entry_bytes=32)
        b = characterize(SMALL_FLOWS, state_entry_bytes=512)
        assert a.emem_cache_hit_rate >= b.emem_cache_hit_rate

    def test_character_carries_packet_size(self):
        wc = characterize(LARGE_FLOWS)
        assert wc.packet_bytes == LARGE_FLOWS.packet_bytes
        assert wc.name == LARGE_FLOWS.name
