"""Batched LSTM inference kernel: bit-exactness guarantees.

The serving fast paths (prediction cache, broker batching, chunked
inference) are only sound because the kernel's output for a row does
not depend on which other rows share its batch.  These tests pin that
property down, along with the id-gather == one-hot-matmul identity the
integer encoding relies on.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.ml.encoding import (
    InstructionVocabulary,
    encode_block_ids,
    encode_blocks,
)
from repro.ml.lstm import LSTMRegressor


@pytest.fixture(scope="module")
def fitted():
    """A small fitted model plus encodings of a mixed-length corpus."""
    rng = np.random.default_rng(11)
    token_seqs = []
    for _ in range(60):
        n = int(rng.integers(0, 13))
        token_seqs.append(
            [f"tok{int(rng.integers(0, 30))}" for _ in range(n)]
        )
    token_seqs[0] = []  # force an all-masked row into the corpus
    vocab = InstructionVocabulary().fit(token_seqs)
    max_len = 14
    X, mask = encode_blocks(vocab, token_seqs, max_len)
    ids, ids_mask = encode_block_ids(vocab, token_seqs, max_len)
    model = LSTMRegressor(input_dim=vocab.size, hidden_dim=12, seed=5)
    model.fit(X, mask, rng.uniform(0.0, 30.0, size=len(token_seqs)),
              epochs=2)
    return {
        "model": model, "vocab": vocab, "max_len": max_len,
        "X": X, "mask": mask, "ids": ids, "ids_mask": ids_mask,
        "token_seqs": token_seqs,
    }


class TestIdGather:
    def test_masks_identical(self, fitted):
        np.testing.assert_array_equal(fitted["mask"], fitted["ids_mask"])

    def test_ids_equal_one_hot_bitwise(self, fitted):
        one_hot = fitted["model"].predict(fitted["X"], fitted["mask"])
        gathered = fitted["model"].predict_ids(fitted["ids"], fitted["mask"])
        np.testing.assert_array_equal(gathered, one_hot)


class TestBatchInvariance:
    def test_row_slices_are_stable(self, fitted):
        model, ids, mask = fitted["model"], fitted["ids"], fitted["mask"]
        full = model.predict_ids(ids, mask)
        for n in (1, 2, 3, 7, len(ids)):
            np.testing.assert_array_equal(
                model.predict_ids(ids[:n], mask[:n]), full[:n]
            )

    def test_chunk_rows_never_changes_results(self, fitted):
        model, ids, mask = fitted["model"], fitted["ids"], fitted["mask"]
        full = model.predict_ids(ids, mask)
        for chunk_rows in (1, 2, 5, 17, 1000):
            np.testing.assert_array_equal(
                model.predict_ids(ids, mask, chunk_rows=chunk_rows), full
            )
            np.testing.assert_array_equal(
                model.predict(fitted["X"], mask, chunk_rows=chunk_rows),
                full,
            )

    def test_invalid_chunk_rows_rejected(self, fitted):
        with pytest.raises(ValueError):
            fitted["model"].predict_ids(
                fitted["ids"], fitted["mask"], chunk_rows=0
            )

    def test_empty_row_invariant_to_neighbours(self, fitted):
        vocab, max_len = fitted["vocab"], fitted["max_len"]
        model = fitted["model"]
        alone = model.predict_ids(*encode_block_ids(vocab, [[]], max_len))
        crowd = model.predict_ids(
            *encode_block_ids(vocab, [[], ["tok1", "tok2"], []], max_len)
        )
        assert np.isfinite(crowd).all()
        np.testing.assert_array_equal(crowd[0], alone[0])
        np.testing.assert_array_equal(crowd[2], alone[0])

    def test_zero_row_batch(self, fitted):
        out = fitted["model"].predict_ids(
            *encode_block_ids(fitted["vocab"], [], fitted["max_len"])
        )
        assert out.shape == (0,)
