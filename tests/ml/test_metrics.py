"""Metric tests, including properties of the Table-1 divergences."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.ml import metrics


dist = st.lists(
    st.floats(min_value=0.01, max_value=10.0), min_size=3, max_size=12
)


class TestRegressionMetrics:
    def test_wmape_perfect(self):
        assert metrics.wmape([1, 2, 3], [1, 2, 3]) == 0.0

    def test_wmape_weighted(self):
        # Error of 1 on a total of 10 -> 10%.
        assert metrics.wmape([4, 6], [5, 6]) == pytest.approx(0.1)

    def test_wmape_zero_truth(self):
        assert metrics.wmape([0, 0], [0, 0]) == 0.0
        assert metrics.wmape([0, 0], [1, 0]) == float("inf")

    def test_mae(self):
        assert metrics.mae([1, 3], [2, 5]) == pytest.approx(1.5)


class TestClassificationMetrics:
    def test_precision_recall(self):
        y_true = [1, 1, 0, 0, 1]
        y_pred = [1, 0, 1, 0, 1]
        pr = metrics.precision_recall(y_true, y_pred)
        assert pr["tp"] == 2 and pr["fp"] == 1 and pr["fn"] == 1
        assert pr["precision"] == pytest.approx(2 / 3)
        assert pr["recall"] == pytest.approx(2 / 3)

    def test_no_positive_predictions(self):
        pr = metrics.precision_recall([0, 0], [0, 0])
        assert pr["precision"] == 1.0

    def test_top_k_accuracy(self):
        ranked = [[2, 0, 1], [1, 2, 0]]
        assert metrics.top_k_accuracy([2, 0], ranked, k=1) == 0.5
        assert metrics.top_k_accuracy([2, 0], ranked, k=3) == 1.0


class TestDivergences:
    @pytest.mark.parametrize("name,fn", list(metrics.TABLE1_METRICS.items()))
    def test_identical_distributions_near_zero(self, name, fn):
        p = np.array([0.2, 0.3, 0.5])
        assert fn(p, p) == pytest.approx(0.0, abs=1e-9)

    @pytest.mark.parametrize("name,fn", list(metrics.TABLE1_METRICS.items()))
    def test_different_distributions_positive(self, name, fn):
        p = np.array([0.9, 0.05, 0.05])
        q = np.array([0.05, 0.05, 0.9])
        assert fn(p, q) > 0.01

    @given(p=dist, q=dist)
    @settings(max_examples=30, deadline=None)
    def test_js_symmetric_and_bounded(self, p, q):
        n = min(len(p), len(q))
        p, q = np.array(p[:n]), np.array(q[:n])
        d1 = metrics.jensen_shannon(p, q)
        d2 = metrics.jensen_shannon(q, p)
        assert d1 == pytest.approx(d2, abs=1e-9)
        assert 0.0 <= d1 <= np.log(2) + 1e-9

    @given(p=dist, q=dist)
    @settings(max_examples=30, deadline=None)
    def test_variational_bounded_by_two(self, p, q):
        n = min(len(p), len(q))
        d = metrics.variational_distance(np.array(p[:n]), np.array(q[:n]))
        assert 0.0 <= d <= 2.0 + 1e-9

    @given(p=dist, q=dist)
    @settings(max_examples=30, deadline=None)
    def test_bhattacharyya_nonnegative(self, p, q):
        n = min(len(p), len(q))
        assert metrics.bhattacharyya(np.array(p[:n]), np.array(q[:n])) >= -1e-12

    def test_renyi_alpha_validation(self):
        with pytest.raises(ValueError):
            metrics.renyi_divergence([1, 1], [1, 1], alpha=1.0)

    def test_normalization_rejects_zero_mass(self):
        with pytest.raises(ValueError):
            metrics.jensen_shannon([0, 0], [1, 1])

    def test_cosine_scale_invariant(self):
        p = np.array([1.0, 2.0, 3.0])
        assert metrics.cosine_distance(p, 10 * p) == pytest.approx(0.0, abs=1e-9)
