"""Model tests: each learner must fit simple structure, be
deterministic under a seed, and respect its API contract."""

import numpy as np
import pytest

from repro.ml import (
    AutoMLClassifier,
    AutoMLRegressor,
    CNNRegressor,
    DecisionTreeClassifier,
    DecisionTreeRegressor,
    GBDTClassifier,
    GBDTRegressor,
    KMeans,
    KNNClassifier,
    KNNRegressor,
    LambdaRanker,
    LinearSVM,
    MLPClassifier,
    MLPRegressor,
    PCA,
    RandomForestRegressor,
)
from repro.ml.kmeans import choose_k, silhouette_score
from repro.ml.metrics import accuracy, wmape
from repro.ml.ranking import ndcg_at_k


@pytest.fixture(scope="module")
def regression_data():
    rng = np.random.default_rng(0)
    X = rng.normal(size=(250, 6))
    y = 20 + 5 * X[:, 0] - 3 * X[:, 1] * X[:, 1] + 0.1 * rng.normal(size=250)
    return X, np.abs(y)


@pytest.fixture(scope="module")
def classification_data():
    rng = np.random.default_rng(1)
    X = rng.normal(size=(200, 5))
    y = ((X[:, 0] + X[:, 1] > 0)).astype(int)
    return X, y


class TestTrees:
    def test_regressor_fits_structure(self, regression_data):
        X, y = regression_data
        model = DecisionTreeRegressor(max_depth=8).fit(X, y)
        assert wmape(y, model.predict(X)) < 0.15

    def test_depth_limits_fit(self, regression_data):
        X, y = regression_data
        shallow = DecisionTreeRegressor(max_depth=1).fit(X, y)
        deep = DecisionTreeRegressor(max_depth=8).fit(X, y)
        assert wmape(y, deep.predict(X)) < wmape(y, shallow.predict(X))

    def test_constant_target_single_leaf(self):
        X = np.random.default_rng(0).normal(size=(30, 3))
        model = DecisionTreeRegressor().fit(X, np.full(30, 7.0))
        assert np.allclose(model.predict(X), 7.0)
        assert model.root.is_leaf

    def test_min_samples_leaf_respected(self, regression_data):
        X, y = regression_data
        model = DecisionTreeRegressor(max_depth=20, min_samples_leaf=50).fit(X, y)

        def leaf_depths(node, d=0):
            if node.is_leaf:
                yield d
            else:
                yield from leaf_depths(node.left, d + 1)
                yield from leaf_depths(node.right, d + 1)

        assert max(leaf_depths(model.root)) <= 4  # 250/50 bounds splits

    def test_classifier(self, classification_data):
        X, y = classification_data
        model = DecisionTreeClassifier(max_depth=6).fit(X, y)
        assert accuracy(y, model.predict(X)) > 0.9
        proba = model.predict_proba(X)
        assert np.allclose(proba.sum(axis=1), 1.0)


class TestEnsembles:
    def test_forest_beats_single_tree_on_holdout(self, regression_data):
        X, y = regression_data
        X_train, y_train = X[:180], y[:180]
        X_test, y_test = X[180:], y[180:]
        tree = DecisionTreeRegressor(max_depth=10).fit(X_train, y_train)
        forest = RandomForestRegressor(n_trees=20, max_depth=10).fit(
            X_train, y_train
        )
        assert wmape(y_test, forest.predict(X_test)) <= wmape(
            y_test, tree.predict(X_test)
        ) * 1.1

    def test_forest_deterministic(self, regression_data):
        X, y = regression_data
        a = RandomForestRegressor(n_trees=5, seed=3).fit(X, y).predict(X[:10])
        b = RandomForestRegressor(n_trees=5, seed=3).fit(X, y).predict(X[:10])
        assert np.allclose(a, b)

    def test_forest_unfitted_raises(self):
        with pytest.raises(RuntimeError):
            RandomForestRegressor().predict(np.zeros((2, 3)))

    def test_gbdt_regression(self, regression_data):
        X, y = regression_data
        model = GBDTRegressor(n_rounds=60).fit(X, y)
        assert wmape(y, model.predict(X)) < 0.1

    def test_gbdt_more_rounds_fit_better(self, regression_data):
        X, y = regression_data
        few = GBDTRegressor(n_rounds=5).fit(X, y)
        many = GBDTRegressor(n_rounds=60).fit(X, y)
        assert wmape(y, many.predict(X)) < wmape(y, few.predict(X))

    def test_gbdt_classifier(self, classification_data):
        X, y = classification_data
        model = GBDTClassifier(n_rounds=30).fit(X, y)
        assert accuracy(y, model.predict(X)) > 0.92

    def test_gbdt_multiclass(self):
        rng = np.random.default_rng(2)
        X = rng.normal(size=(150, 4))
        y = np.digitize(X[:, 0], [-0.5, 0.5])
        model = GBDTClassifier(n_rounds=30).fit(X, y)
        assert accuracy(y, model.predict(X)) > 0.85
        assert set(model.predict(X)) <= {0, 1, 2}

    def test_gbdt_custom_gradients(self):
        X = np.linspace(0, 1, 50)[:, None]
        target = 3 * X.ravel()
        model = GBDTRegressor(n_rounds=40)
        model.fit_gradients(X, lambda scores: target - scores)
        assert np.abs(model.predict(X) - target).mean() < 0.2


class TestInstanceAndMarginModels:
    def test_knn_regressor_exact_on_training_points(self, regression_data):
        X, y = regression_data
        model = KNNRegressor(k=1).fit(X, y)
        assert np.allclose(model.predict(X[:20]), y[:20])

    def test_knn_classifier(self, classification_data):
        X, y = classification_data
        model = KNNClassifier(k=3).fit(X, y)
        assert accuracy(y, model.predict(X)) > 0.9

    def test_knn_k_validation(self):
        with pytest.raises(ValueError):
            KNNClassifier(k=0)

    def test_svm_separable(self):
        rng = np.random.default_rng(0)
        X = np.vstack([rng.normal(-2, 0.5, (50, 3)), rng.normal(2, 0.5, (50, 3))])
        y = np.array([0] * 50 + [1] * 50)
        model = LinearSVM(epochs=60, lam=1e-4).fit(X, y)
        assert accuracy(y, model.predict(X)) > 0.95

    def test_svm_decision_margin_sign(self):
        rng = np.random.default_rng(0)
        X = np.vstack([rng.normal(-2, 0.5, (40, 2)), rng.normal(2, 0.5, (40, 2))])
        y = np.array([0] * 40 + [1] * 40)
        model = LinearSVM(epochs=30).fit(X, y)
        scores = model.decision_function(X)
        assert scores[:40].mean() < 0 < scores[40:].mean()

    def test_svm_unfitted_raises(self):
        with pytest.raises(RuntimeError):
            LinearSVM().decision_function(np.zeros((2, 2)))


class TestNeuralModels:
    def test_mlp_regressor_learns(self, regression_data):
        X, y = regression_data
        model = MLPRegressor(X.shape[1], hidden=(32,), lr=3e-3)
        model.fit(X, y, epochs=80, seed=0)
        assert wmape(y, model.predict(X)) < 0.35
        assert model.history[-1] < model.history[0]

    def test_mlp_classifier_learns(self, classification_data):
        X, y = classification_data
        model = MLPClassifier(X.shape[1], 2, hidden=(16,), lr=3e-3)
        model.fit(X, y, epochs=60)
        assert accuracy(y, model.predict(X)) > 0.9
        proba = model.predict_proba(X[:5])
        assert np.allclose(proba.sum(axis=1), 1.0)

    def _sequence_task(self, n=200, T=16, V=8, seed=0):
        rng = np.random.default_rng(seed)
        seqs = rng.integers(2, V, size=(n, T))
        lens = rng.integers(4, T, size=n)
        X = np.zeros((n, T, V), dtype=np.float32)
        mask = np.zeros((n, T), dtype=np.float32)
        y = np.zeros(n)
        for i in range(n):
            X[i, np.arange(lens[i]), seqs[i, : lens[i]]] = 1
            mask[i, : lens[i]] = 1
            y[i] = 3 * np.sum(seqs[i, : lens[i]] == 3) + lens[i]
        return X, mask, y

    def test_lstm_learns_counting_task(self):
        from repro.ml import LSTMRegressor

        X, mask, y = self._sequence_task()
        model = LSTMRegressor(X.shape[2], hidden_dim=24)
        model.fit(X, mask, y, epochs=25)
        assert wmape(y, model.predict(X, mask)) < 0.1

    def test_lstm_deterministic(self):
        from repro.ml import LSTMRegressor

        X, mask, y = self._sequence_task(n=50)
        a = LSTMRegressor(X.shape[2], seed=4)
        b = LSTMRegressor(X.shape[2], seed=4)
        a.fit(X, mask, y, epochs=3)
        b.fit(X, mask, y, epochs=3)
        assert np.allclose(a.predict(X, mask), b.predict(X, mask))

    def test_lstm_uses_order_not_just_counts(self):
        """Sequence models must distinguish permuted sequences when the
        target depends on order (the paper's motivation for LSTM over
        bag-of-words baselines)."""
        from repro.ml import LSTMRegressor

        rng = np.random.default_rng(0)
        n, T, V = 300, 10, 4
        X = np.zeros((n, T, V), dtype=np.float32)
        y = np.zeros(n)
        for i in range(n):
            seq = rng.integers(0, V, size=T)
            X[i, np.arange(T), seq] = 1
            # Target: count of adjacent (2 -> 3) pairs, an order feature.
            y[i] = 1 + 4 * sum(
                1 for a, b in zip(seq, seq[1:]) if (a, b) == (2, 3)
            )
        mask = np.ones((n, T), dtype=np.float32)
        model = LSTMRegressor(V, hidden_dim=24)
        model.fit(X, mask, y, epochs=40)
        assert wmape(y, model.predict(X, mask)) < 0.25

    def test_cnn_learns(self):
        X, mask, y = self._sequence_task()
        model = CNNRegressor(X.shape[2], n_filters=12)
        model.fit(X, mask, y, epochs=25)
        assert wmape(y, model.predict(X, mask)) < 0.35


class TestClustering:
    def test_kmeans_recovers_blobs(self):
        rng = np.random.default_rng(0)
        X = np.vstack(
            [rng.normal(c, 0.3, size=(20, 3)) for c in (-5.0, 0.0, 5.0)]
        )
        model = KMeans(3, seed=0).fit(X)
        sizes = sorted(np.bincount(model.labels_))
        assert sizes == [20, 20, 20]

    def test_kmeans_inertia_decreases_with_k(self):
        rng = np.random.default_rng(0)
        X = rng.normal(size=(60, 4))
        i2 = KMeans(2, seed=0).fit(X).inertia_
        i6 = KMeans(6, seed=0).fit(X).inertia_
        assert i6 < i2

    def test_kmeans_validation(self):
        with pytest.raises(ValueError):
            KMeans(0)
        with pytest.raises(ValueError):
            KMeans(10).fit(np.zeros((3, 2)))

    def test_choose_k_finds_structure(self):
        rng = np.random.default_rng(0)
        X = np.vstack(
            [rng.normal(c, 0.2, size=(15, 2)) for c in (-4.0, 0.0, 4.0)]
        )
        k, model = choose_k(X, k_max=6, seed=0)
        assert k == 3

    def test_silhouette_range(self):
        rng = np.random.default_rng(0)
        X = rng.normal(size=(30, 3))
        labels = KMeans(3, seed=0).fit(X).labels_
        s = silhouette_score(X, labels)
        assert -1.0 <= s <= 1.0

    def test_pca_orthonormal_components(self):
        rng = np.random.default_rng(0)
        X = rng.normal(size=(50, 6))
        pca = PCA(3).fit(X)
        gram = pca.components_ @ pca.components_.T
        assert np.allclose(gram, np.eye(3), atol=1e-8)

    def test_pca_explains_variance_in_order(self):
        rng = np.random.default_rng(0)
        X = rng.normal(size=(100, 5)) * np.array([10, 5, 1, 0.5, 0.1])
        pca = PCA(5).fit(X)
        ratios = pca.explained_variance_ratio_
        assert all(b <= a + 1e-12 for a, b in zip(ratios, ratios[1:]))
        assert ratios[0] > 0.5


class TestRanking:
    def _ranking_data(self, n_queries=40, items=5, seed=0):
        rng = np.random.default_rng(seed)
        X, rel, qid = [], [], []
        for q in range(n_queries):
            feats = rng.normal(size=(items, 3))
            X.append(feats)
            rel.append(np.argsort(np.argsort(feats[:, 0])))
            qid.extend([q] * items)
        return np.vstack(X), np.concatenate(rel).astype(float), np.array(qid)

    def test_ranker_learns_feature_order(self):
        X, rel, qid = self._ranking_data()
        ranker = LambdaRanker(n_rounds=30).fit(X, rel, qid)
        hits = 0
        for q in range(40):
            mask = qid == q
            order = ranker.rank(X[mask])
            hits += rel[mask][order[0]] == rel[mask].max()
        assert hits / 40 > 0.8

    def test_ndcg_perfect_ranking(self):
        assert ndcg_at_k([3, 2, 1, 0]) == pytest.approx(1.0)

    def test_ndcg_worst_below_one(self):
        assert ndcg_at_k([0, 1, 2, 3]) < 1.0

    def test_rank_returns_permutation(self):
        X, rel, qid = self._ranking_data(n_queries=5)
        ranker = LambdaRanker(n_rounds=5).fit(X, rel, qid)
        order = ranker.rank(X[:5])
        assert sorted(order) == list(range(5))


class TestAutoML:
    def test_regressor_picks_reasonable_pipeline(self, regression_data):
        X, y = regression_data
        automl = AutoMLRegressor(seed=0).fit(X, y)
        assert automl.best_name_ is not None
        assert len(automl.leaderboard_) >= 5
        assert wmape(y, automl.predict(X)) < 0.2

    def test_classifier(self, classification_data):
        X, y = classification_data
        automl = AutoMLClassifier(seed=0).fit(X, y)
        assert accuracy(y, automl.predict(X)) > 0.85

    def test_leaderboard_sorted(self, classification_data):
        X, y = classification_data
        automl = AutoMLClassifier(seed=0).fit(X, y)
        scores = [s for _n, s in automl.leaderboard_]
        assert scores == sorted(scores, reverse=True)

    def test_unfitted_raises(self):
        with pytest.raises(RuntimeError):
            AutoMLRegressor().predict(np.zeros((2, 2)))
