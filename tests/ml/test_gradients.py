"""Numerical gradient checks for the hand-written backprop.

The LSTM/MLP/CNN implement BPTT and backprop by hand; these tests
compare every analytic parameter gradient against central finite
differences on tiny instances.  Any indexing or chain-rule slip in the
backward passes fails these within machine precision.
"""

import numpy as np
import pytest

from repro.ml.cnn import CNNRegressor
from repro.ml.lstm import LSTMRegressor
from repro.ml.mlp import MLPRegressor

EPS = 1e-5
TOL = 1e-4


def _relative_error(analytic: np.ndarray, numeric: np.ndarray) -> float:
    denom = np.maximum(np.abs(analytic) + np.abs(numeric), 1e-8)
    return float(np.max(np.abs(analytic - numeric) / denom))


class TestLstmGradients:
    def _setup(self, seed=0):
        rng = np.random.default_rng(seed)
        B, T, D = 3, 5, 4
        X = rng.random((B, T, D))
        mask = np.ones((B, T))
        mask[0, 3:] = 0.0  # include a padded sequence
        y = rng.random(B) * 4.0
        model = LSTMRegressor(D, hidden_dim=6, fc_dim=5, seed=seed)
        return model, X, mask, y

    def _loss_and_grads(self, model, X, mask, y):
        pred, cache = model._forward(X, mask)
        err = pred - y
        loss = float(np.mean(err**2))
        grads = model._backward(X, mask, 2.0 * err / len(err), cache)
        return loss, grads

    @pytest.mark.parametrize(
        "param", ["Wx", "Wh", "b", "W1", "b1", "W2", "b2"]
    )
    def test_parameter_gradient(self, param):
        model, X, mask, y = self._setup()
        _loss, grads = self._loss_and_grads(model, X, mask, y)
        theta = model.params[param]
        numeric = np.zeros_like(theta)
        it = np.nditer(theta, flags=["multi_index"])
        # Sample at most 20 coordinates for speed.
        coords = []
        while not it.finished:
            coords.append(it.multi_index)
            it.iternext()
        rng = np.random.default_rng(1)
        if len(coords) > 20:
            coords = [coords[i] for i in
                      rng.choice(len(coords), size=20, replace=False)]
        analytic = grads[param]
        for idx in coords:
            original = theta[idx]
            theta[idx] = original + EPS
            pred, _ = model._forward(X, mask)
            loss_plus = float(np.mean((pred - y) ** 2))
            theta[idx] = original - EPS
            pred, _ = model._forward(X, mask)
            loss_minus = float(np.mean((pred - y) ** 2))
            theta[idx] = original
            numeric[idx] = (loss_plus - loss_minus) / (2 * EPS)
            assert abs(analytic[idx] - numeric[idx]) <= TOL * max(
                1.0, abs(numeric[idx])
            ), (param, idx)


class TestMlpGradients:
    def test_all_layers(self):
        rng = np.random.default_rng(0)
        X = rng.random((6, 3))
        y_log = rng.random((6, 1))
        model = MLPRegressor(3, hidden=(4,), lr=1e-3, seed=0)

        def loss_fn():
            activations, _pre = model._forward(X)
            return float(np.mean((activations[-1] - y_log) ** 2))

        activations, pre = model._forward(X)
        err = activations[-1] - y_log
        grads = model._backward(activations, pre, 2.0 * err / len(err))

        for layer in range(len(model.weights)):
            for kind, params, grad in (
                ("W", model.weights, grads[layer][0]),
                ("b", model.biases, grads[layer][1]),
            ):
                theta = params[layer]
                it = np.nditer(theta, flags=["multi_index"])
                while not it.finished:
                    idx = it.multi_index
                    original = theta[idx]
                    theta[idx] = original + EPS
                    plus = loss_fn()
                    theta[idx] = original - EPS
                    minus = loss_fn()
                    theta[idx] = original
                    numeric = (plus - minus) / (2 * EPS)
                    assert abs(grad[idx] - numeric) <= TOL * max(
                        1.0, abs(numeric)
                    ), (kind, layer, idx)
                    it.iternext()


class TestCnnGradients:
    def test_kernel_and_fc(self):
        rng = np.random.default_rng(0)
        B, T, D = 4, 6, 3
        X = rng.random((B, T, D)).astype(np.float64)
        mask = np.ones((B, T))
        y_log = rng.random(B)
        model = CNNRegressor(D, n_filters=3, widths=(2, 3), seed=0)

        def loss_fn():
            pred, _ = model._forward(X, mask)
            return float(np.mean((pred - y_log) ** 2))

        pred, cache = model._forward(X, mask)
        err = pred - y_log
        grads = model._backward(2.0 * err / len(err), cache)

        rng2 = np.random.default_rng(2)
        for name, theta in model.params.items():
            grad = grads[name]
            flat = theta.reshape(-1)
            n_check = min(12, flat.size)
            for k in rng2.choice(flat.size, size=n_check, replace=False):
                idx = np.unravel_index(k, theta.shape)
                original = theta[idx]
                theta[idx] = original + EPS
                plus = loss_fn()
                theta[idx] = original - EPS
                minus = loss_fn()
                theta[idx] = original
                numeric = (plus - minus) / (2 * EPS)
                # Max pooling introduces kinks; allow looser tolerance.
                assert abs(grad[idx] - numeric) <= 5e-3 * max(
                    1.0, abs(numeric)
                ), (name, idx)
