"""Vocabulary compaction, one-hot encoding, and SPE tests."""

import numpy as np
import pytest

from repro.click.elements import build_element
from repro.click.frontend import lower_element
from repro.ml.encoding import (
    InstructionVocabulary,
    PAD_TOKEN,
    UNK_TOKEN,
    block_tokens,
    encode_blocks,
    encode_sequence,
    histogram_features,
)
from repro.ml.spe import SequentialPatternExtractor
from repro.nfir.annotate import annotate_module


@pytest.fixture(scope="module")
def nat_module():
    module = lower_element(build_element("mininat"))
    annotate_module(module)  # sets instruction categories for tokens
    return module


class TestAbstraction:
    def test_variables_collapse_to_var(self, nat_module):
        import re

        tokens = []
        for block in nat_module.handler.blocks:
            tokens.extend(block_tokens(block, compact=True))
        joined = " ".join(tokens)
        assert "VAR" in joined
        # No concrete SSA value names survive ("%struct.x" type
        # spellings are fine; "%v12"-style names are not).
        assert not re.search(r"%[a-z]+\d", joined)

    def test_header_field_names_survive(self, nat_module):
        tokens = []
        for block in nat_module.handler.blocks:
            tokens.extend(block_tokens(block, compact=True))
        joined = " ".join(tokens)
        # Section 3.2: "with the exception of well-defined header
        # field names".
        assert "dst_addr" in joined
        # NF-private struct fields are anonymized.
        assert "int_ip" not in joined
        assert "FIELD" in joined

    def test_non_compact_mode_keeps_operands(self, nat_module):
        block = nat_module.handler.blocks[0]
        compact = block_tokens(block, compact=True)
        raw = block_tokens(block, compact=False)
        assert len(set(raw)) >= len(set(compact))

    def test_compact_vocabulary_is_small(self, lowered_library):
        vocab = InstructionVocabulary()
        for module in lowered_library.values():
            annotate_module(module)
            vocab.fit(
                block_tokens(b, compact=True) for b in module.handler.blocks
            )
        # Paper: "a few hundred distinct words".
        assert vocab.size < 400

    def test_uncompacted_vocabulary_explodes(self, lowered_library):
        compact = InstructionVocabulary()
        raw = InstructionVocabulary()
        for module in lowered_library.values():
            compact.fit(
                block_tokens(b, compact=True) for b in module.handler.blocks
            )
            raw.fit(
                block_tokens(b, compact=False) for b in module.handler.blocks
            )
        assert raw.size > compact.size * 3


class TestVocabularyEncoding:
    def test_pad_and_unk_reserved(self):
        vocab = InstructionVocabulary()
        assert vocab.index(PAD_TOKEN) == 0
        assert vocab.index("never seen") == vocab.index(UNK_TOKEN) == 1

    def test_encode_sequence_shapes(self):
        vocab = InstructionVocabulary().fit([["a", "b"], ["c"]])
        one_hot, mask = encode_sequence(vocab, ["a", "c"], max_len=4)
        assert one_hot.shape == (4, vocab.size)
        assert mask.tolist() == [1, 1, 0, 0]
        assert one_hot[0, vocab.index("a")] == 1

    def test_truncation(self):
        vocab = InstructionVocabulary().fit([["a"]])
        one_hot, mask = encode_sequence(vocab, ["a"] * 10, max_len=3)
        assert mask.sum() == 3

    def test_batch_encoding(self):
        vocab = InstructionVocabulary().fit([["a", "b"]])
        X, mask = encode_blocks(vocab, [["a"], ["a", "b"]], max_len=3)
        assert X.shape == (2, 3, vocab.size)
        assert mask.sum() == 3

    def test_histogram_features(self):
        vocab = InstructionVocabulary().fit([["a", "b"]])
        X = histogram_features(vocab, [["a", "a", "b"], ["b"]])
        assert X[0, vocab.index("a")] == 2
        assert X[1, vocab.index("b")] == 1


class TestSPE:
    def test_finds_discriminative_pattern(self):
        positives = [["xor", "shr", "and"] * 3 for _ in range(10)]
        negatives = [["add", "load", "store"] * 3 for _ in range(10)]
        spe = SequentialPatternExtractor(min_support=0.6, min_confidence=0.8)
        spe.fit(positives + negatives, [1] * 10 + [0] * 10)
        assert spe.patterns_
        assert all(p.confidence >= 0.8 for p in spe.patterns_)
        flat = {t for p in spe.patterns_ for t in p.tokens}
        assert "xor" in flat and "add" not in flat

    def test_common_patterns_rejected_by_confidence(self):
        shared = ["add", "add"]
        positives = [shared + ["xor"] for _ in range(10)]
        negatives = [shared + ["load"] for _ in range(10)]
        spe = SequentialPatternExtractor(min_confidence=0.9)
        spe.fit(positives + negatives, [1] * 10 + [0] * 10)
        assert ("add", "add") not in [p.tokens for p in spe.patterns_]

    def test_transform_counts_occurrences(self):
        positives = [["a", "b", "a", "b"] for _ in range(5)]
        negatives = [["c", "c"] for _ in range(5)]
        spe = SequentialPatternExtractor(min_support=0.5)
        X = spe.fit_transform(positives + negatives, [1] * 5 + [0] * 5)
        ab = [p.tokens for p in spe.patterns_].index(("a", "b"))
        assert X[0, ab] == 2
        assert X[5, ab] == 0

    def test_requires_positive_examples(self):
        spe = SequentialPatternExtractor()
        with pytest.raises(ValueError):
            spe.fit([["a"]], [0])

    def test_unfitted_transform_raises(self):
        with pytest.raises(RuntimeError):
            SequentialPatternExtractor().transform([["a"]])

    def test_max_patterns_cap(self):
        rng = np.random.default_rng(0)
        positives = [
            [str(x) for x in rng.integers(0, 5, size=20)] for _ in range(20)
        ]
        spe = SequentialPatternExtractor(
            min_support=0.05, min_confidence=0.0, max_patterns=10
        )
        spe.fit(positives + [["z"]], [1] * 20 + [0])
        assert len(spe.patterns_) <= 10
