"""Frontend lowering tests: ClickScript -> NFIR."""

import pytest

from repro.click import ast as C
from repro.click.elements._dsl import (
    array_state,
    assign,
    brk,
    decl,
    eq,
    fld,
    for_,
    hashmap_state,
    helper,
    idx,
    if_,
    lit,
    lt,
    mcall,
    ne,
    pkt,
    ret,
    scalar_state,
    struct,
    v,
    while_,
)
from repro.click.frontend import LoweringError, lower_element
from repro.nfir import annotate_module, verify_module
from repro.nfir.instructions import Alloca, Call, CondBr, Store


def lower(handler, state=(), structs=(), helpers=(), inline=True):
    element = C.ElementDef(
        "t", state=list(state), structs=list(structs),
        handler=list(handler), helpers=list(helpers),
    )
    module = lower_element(element, inline=inline)
    verify_module(module)
    return module


class TestBasicLowering:
    def test_empty_handler_gets_ret(self):
        m = lower([])
        assert m.handler.blocks[0].terminator.opcode == "ret"

    def test_local_decl_creates_entry_alloca(self):
        m = lower([decl("x", "u32", lit(5))])
        entry = m.handler.entry
        assert isinstance(entry.instructions[0], Alloca)

    def test_width_coercion_on_assign(self):
        m = lower([decl("x", "u8"), assign(v("x"), lit(300))])
        # 300 is coerced into the u8 slot (constant folding or trunc).
        stores = [i for i in m.handler.instructions() if isinstance(i, Store)]
        assert stores
        assert stores[-1].value.type.size_bytes() == 1

    def test_promotion_widens_mixed_arith(self):
        m = lower(
            [
                decl("a", "u16", lit(1)),
                decl("b", "u32", lit(2)),
                decl("c", "u32", v("a") + v("b")),
            ]
        )
        from repro.nfir.instructions import BinaryOp

        adds = [i for i in m.handler.instructions() if isinstance(i, BinaryOp)]
        assert all(i.type.size_bytes() == 4 for i in adds if i.opcode == "add")

    def test_if_produces_diamond(self):
        m = lower([if_(eq(lit(1), 1), [decl("x", "u32", lit(1))])])
        names = [b.name for b in m.handler.blocks]
        assert any(n.startswith("if.then") for n in names)
        assert any(n.startswith("if.end") for n in names)

    def test_while_produces_loop(self):
        m = lower(
            [
                decl("i", "u32", lit(0)),
                while_(lt(v("i"), 4), [assign(v("i"), v("i") + 1)]),
            ]
        )
        names = [b.name for b in m.handler.blocks]
        assert any(n.startswith("while.cond") for n in names)
        cond_block = next(
            b for b in m.handler.blocks if b.name.startswith("while.cond")
        )
        assert isinstance(cond_block.terminator, CondBr)

    def test_for_loop_counts(self):
        from repro.click.interp import Interpreter
        from repro.click.packet import Packet

        m = lower(
            [
                decl("total", "u32", lit(0)),
                for_("i", 0, 5, [assign(v("total"), v("total") + v("i"))]),
                assign(v("out"), v("total")),
            ],
            state=[scalar_state("out", "u32")],
        )
        interp = Interpreter(m)
        interp.run_packet(Packet(ip={}, tcp={}))
        assert interp.global_value("out") == 0 + 1 + 2 + 3 + 4

    def test_break_exits_innermost_loop(self):
        from repro.click.interp import Interpreter
        from repro.click.packet import Packet

        m = lower(
            [
                decl("n", "u32", lit(0)),
                for_(
                    "i",
                    0,
                    10,
                    [
                        if_(eq(v("i"), 3), [brk()]),
                        assign(v("n"), v("n") + 1),
                    ],
                ),
                assign(v("out"), v("n")),
            ],
            state=[scalar_state("out", "u32")],
        )
        interp = Interpreter(m)
        interp.run_packet(Packet(ip={}, tcp={}))
        assert interp.global_value("out") == 3

    def test_break_outside_loop_rejected(self):
        with pytest.raises(LoweringError, match="break"):
            lower([brk()])

    def test_redeclaration_rejected(self):
        with pytest.raises(LoweringError, match="redeclared"):
            lower([decl("x", "u32"), decl("x", "u32")])

    def test_unknown_variable_rejected(self):
        with pytest.raises(LoweringError, match="unknown variable"):
            lower([assign(v("ghost"), lit(1))])

    def test_unknown_type_rejected(self):
        with pytest.raises(LoweringError, match="unknown type"):
            lower([decl("x", "u33")])


class TestStateLowering:
    def test_scalar_state_global(self):
        m = lower(
            [assign(v("ctr"), v("ctr") + 1)],
            state=[scalar_state("ctr", "u64")],
        )
        assert m.globals["ctr"].kind == "scalar"
        assert m.globals["ctr"].size_bytes == 8

    def test_array_state_size(self):
        m = lower(
            [assign(idx(v("a"), 3), lit(1))],
            state=[array_state("a", "u32", 128)],
        )
        assert m.globals["a"].size_bytes == 512

    def test_hashmap_entry_layout_presized(self):
        m = lower(
            [],
            state=[hashmap_state("m", "k", "val", 64)],
            structs=[
                struct("k", ("a", "u32")),
                struct("val", ("b", "u32")),
            ],
        )
        g = m.globals["m"]
        assert g.kind == "hashmap"
        assert g.entries == 64
        # occupied(1) + key(4) + value(4) per entry.
        assert g.size_bytes == 64 * 9

    def test_state_accesses_annotated_stateful(self):
        m = lower(
            [assign(v("ctr"), v("ctr") + 1)],
            state=[scalar_state("ctr", "u32")],
        )
        ann = annotate_module(m)
        assert ann.n_mem_stateful == 2  # one load + one store

    def test_map_without_method_rejected(self):
        with pytest.raises(LoweringError, match="API methods"):
            lower(
                [assign(v("m"), lit(1))],
                state=[hashmap_state("m", "k", "val", 4)],
                structs=[struct("k", ("a", "u32")), struct("val", ("b", "u32"))],
            )


class TestApiLowering:
    def test_header_api_returns_pointer(self):
        m = lower([decl("ip", "ip_hdr*", pkt("ip_header"))])
        calls = [i for i in m.handler.instructions() if isinstance(i, Call)]
        assert calls[0].callee == "ip_header"
        assert calls[0].kind == "api"
        assert calls[0].type.is_pointer

    def test_find_takes_key_address_and_tags_points_to(self):
        m = lower(
            [
                decl("key", "k"),
                assign(fld(v("key"), "a"), lit(1)),
                decl("f", "val*", mcall("m", "find", v("key"))),
                if_(ne(v("f"), 0), [assign(fld(v("f"), "b"), lit(2))]),
            ],
            state=[hashmap_state("m", "k", "val", 4)],
            structs=[struct("k", ("a", "u32")), struct("val", ("b", "u32"))],
        )
        find = next(
            i for i in m.handler.instructions()
            if isinstance(i, Call) and i.callee == "hashmap_find"
        )
        assert find.meta["points_to"] == "stateful:m"
        ann = annotate_module(m)
        touched = {a.global_name for b in ann.blocks for a in b.stateful_accesses}
        assert touched == {"m"}

    def test_wrong_arity_rejected(self):
        with pytest.raises(LoweringError, match="expects"):
            lower([pkt("send").as_stmt()])  # send requires a port

    def test_unknown_method_rejected(self):
        with pytest.raises(LoweringError, match="no method"):
            lower([pkt("teleport", 1).as_stmt()])


class TestHelpers:
    def test_helper_inlined_by_default(self):
        h = helper(
            "triple", [("x", "u32")], "u32", [ret(v("x") * 3)]
        )
        m = lower(
            [decl("y", "u32", C.CallExpr("triple", [lit(5)]))],
            helpers=[h],
        )
        internal = [
            i for i in m.handler.instructions()
            if isinstance(i, Call) and i.kind == "internal"
        ]
        assert not internal
        assert any(b.name.startswith("inl.triple") for b in m.handler.blocks)

    def test_helper_not_inlined_when_disabled(self):
        h = helper("noop", [], "void", [])
        m = lower(
            [C.ExprStmt(C.CallExpr("noop", []))], helpers=[h], inline=False
        )
        internal = [
            i for i in m.handler.instructions()
            if isinstance(i, Call) and i.kind == "internal"
        ]
        assert len(internal) == 1

    def test_helper_semantics_after_inline(self):
        from repro.click.interp import Interpreter
        from repro.click.packet import Packet

        h = helper("triple", [("x", "u32")], "u32", [ret(v("x") * 3)])
        m = lower(
            [
                decl("y", "u32", C.CallExpr("triple", [lit(5)])),
                assign(v("out"), v("y")),
            ],
            state=[scalar_state("out", "u32")],
            helpers=[h],
        )
        interp = Interpreter(m)
        interp.run_packet(Packet(ip={}, tcp={}))
        assert interp.global_value("out") == 15
