"""Interpreter semantics tests: framework APIs, state, profiling."""

import pytest

from repro.click import ast as C
from repro.click.elements._dsl import (
    assign,
    decl,
    eq,
    fcall,
    fld,
    hashmap_state,
    if_,
    lit,
    mcall,
    ne,
    pkt,
    scalar_state,
    struct,
    v,
    vector_state,
    while_,
)
from repro.click.frontend import lower_element
from repro.click.interp import InterpError, Interpreter
from repro.click.packet import Packet


def make_interp(handler, state=(), structs=(), seed=0):
    element = C.ElementDef(
        "t", state=list(state), structs=list(structs), handler=list(handler)
    )
    return Interpreter(lower_element(element), seed=seed)


class TestPacketApis:
    def test_send_sets_out_port(self):
        interp = make_interp([pkt("send", 3).as_stmt()])
        p = interp.run_packet(Packet(ip={}, tcp={}))
        assert p.out_port == 3 and not p.dropped

    def test_drop(self):
        interp = make_interp([pkt("drop").as_stmt()])
        p = interp.run_packet(Packet(ip={}, tcp={}))
        assert p.dropped

    def test_header_field_read_write(self):
        interp = make_interp(
            [
                decl("ip", "ip_hdr*", pkt("ip_header")),
                assign(fld(v("ip"), "ip_ttl"), fld(v("ip"), "ip_ttl") - 1),
                pkt("send", 0).as_stmt(),
            ]
        )
        p = interp.run_packet(Packet(ip={"ip_ttl": 64}, tcp={}))
        assert p.ip["ip_ttl"] == 63

    def test_missing_header_returns_null(self):
        interp = make_interp(
            [
                decl("tcp", "tcp_hdr*", pkt("tcp_header")),
                if_(
                    eq(v("tcp"), 0),
                    [assign(v("saw_null"), lit(1))],
                ),
                pkt("send", 0).as_stmt(),
            ],
            state=[scalar_state("saw_null", "u32")],
        )
        interp.run_packet(Packet(ip={}, udp={}))
        assert interp.global_value("saw_null") == 1

    def test_payload_byte_roundtrip(self):
        interp = make_interp(
            [
                decl("b", "u32", pkt("payload_byte", 0)),
                pkt("set_payload_byte", 1, v("b") + 1).as_stmt(),
                pkt("send", 0).as_stmt(),
            ]
        )
        p = interp.run_packet(Packet(ip={}, tcp={}, payload=b"\x10\x00"))
        assert p.payload == b"\x10\x11"

    def test_payload_len_and_metadata(self):
        interp = make_interp(
            [
                assign(v("len_out"), pkt("payload_len")),
                assign(v("port_out"), pkt("in_port")),
                assign(v("ts_out"), pkt("timestamp_ns")),
                pkt("send", 0).as_stmt(),
            ],
            state=[
                scalar_state("len_out", "u32"),
                scalar_state("port_out", "u32"),
                scalar_state("ts_out", "u64"),
            ],
        )
        interp.run_packet(
            Packet(ip={}, tcp={}, payload=b"abcd", in_port=2, timestamp_ns=99)
        )
        assert interp.global_value("len_out") == 4
        assert interp.global_value("port_out") == 2
        assert interp.global_value("ts_out") == 99

    def test_checksum_deterministic_and_changes(self):
        interp = make_interp(
            [
                decl("ip", "ip_hdr*", pkt("ip_header")),
                fcall("checksum_update_ip", v("ip")).as_stmt(),
                pkt("send", 0).as_stmt(),
            ]
        )
        p1 = interp.run_packet(Packet(ip={"src_addr": 1, "dst_addr": 2}, tcp={}))
        p2 = interp.run_packet(Packet(ip={"src_addr": 1, "dst_addr": 2}, tcp={}))
        p3 = interp.run_packet(Packet(ip={"src_addr": 9, "dst_addr": 2}, tcp={}))
        assert p1.ip["ip_sum"] == p2.ip["ip_sum"] != 0
        assert p1.ip["ip_sum"] != p3.ip["ip_sum"]

    def test_random_is_seeded(self):
        handler = [
            assign(v("r"), fcall("random_u32")),
            pkt("send", 0).as_stmt(),
        ]
        state = [scalar_state("r", "u32")]
        a = make_interp(handler, state, seed=5)
        b = make_interp(handler, state, seed=5)
        a.run_packet(Packet(ip={}, tcp={}))
        b.run_packet(Packet(ip={}, tcp={}))
        assert a.global_value("r") == b.global_value("r")


class TestStatefulApis:
    MAP_STRUCTS = [struct("k", ("a", "u32")), struct("val", ("n", "u32"))]

    def _find_or_insert(self):
        return [
            decl("key", "k"),
            assign(fld(v("key"), "a"), fld(v("ip"), "src_addr")),
            decl("f", "val*", mcall("m", "find", v("key"))),
            if_(
                ne(v("f"), 0),
                [assign(fld(v("f"), "n"), fld(v("f"), "n") + 1)],
                [
                    decl("fresh", "val"),
                    assign(fld(v("fresh"), "n"), lit(1)),
                    mcall("m", "insert", v("key"), v("fresh")).as_stmt(),
                ],
            ),
            pkt("send", 0).as_stmt(),
        ]

    def test_hashmap_find_insert_update(self):
        handler = [decl("ip", "ip_hdr*", pkt("ip_header"))] + self._find_or_insert()
        interp = make_interp(
            handler,
            state=[hashmap_state("m", "k", "val", 16)],
            structs=self.MAP_STRUCTS,
        )
        for _ in range(3):
            interp.run_packet(Packet(ip={"src_addr": 7}, tcp={}))
        interp.run_packet(Packet(ip={"src_addr": 8}, tcp={}))
        table = interp.hashmap("m")
        assert len(table) == 2
        assert table.find((("a", 7),))["n"] == 3
        assert table.find((("a", 8),))["n"] == 1

    def test_hashmap_erase(self):
        handler = [
            decl("ip", "ip_hdr*", pkt("ip_header")),
            decl("key", "k"),
            assign(fld(v("key"), "a"), lit(1)),
            decl("fresh", "val"),
            assign(fld(v("fresh"), "n"), lit(5)),
            mcall("m", "insert", v("key"), v("fresh")).as_stmt(),
            assign(v("gone"), mcall("m", "erase", v("key"))),
            assign(v("sz"), mcall("m", "size")),
            pkt("send", 0).as_stmt(),
        ]
        interp = make_interp(
            handler,
            state=[
                hashmap_state("m", "k", "val", 16),
                scalar_state("gone", "u32"),
                scalar_state("sz", "u32"),
            ],
            structs=self.MAP_STRUCTS,
        )
        interp.run_packet(Packet(ip={}, tcp={}))
        assert interp.global_value("gone") == 1
        assert interp.global_value("sz") == 0

    def test_vector_push_at_remove(self):
        handler = [
            decl("ip", "ip_hdr*", pkt("ip_header")),
            decl("item", "val"),
            assign(fld(v("item"), "n"), fld(v("ip"), "src_addr")),
            mcall("vec", "push_back", v("item")).as_stmt(),
            decl("p", "val*", mcall("vec", "at", 0)),
            if_(ne(v("p"), 0), [assign(v("first"), fld(v("p"), "n"))]),
            pkt("send", 0).as_stmt(),
        ]
        interp = make_interp(
            handler,
            state=[
                vector_state("vec", "val", 4),
                scalar_state("first", "u32"),
            ],
            structs=self.MAP_STRUCTS,
        )
        interp.run_packet(Packet(ip={"src_addr": 42}, tcp={}))
        interp.run_packet(Packet(ip={"src_addr": 43}, tcp={}))
        assert interp.global_value("first") == 42
        assert len(interp.vector("vec").items) == 2

    def test_vector_capacity_bound(self):
        handler = [
            decl("ip", "ip_hdr*", pkt("ip_header")),
            decl("item", "val"),
            assign(fld(v("item"), "n"), lit(1)),
            assign(v("ok"), mcall("vec", "push_back", v("item"))),
            pkt("send", 0).as_stmt(),
        ]
        interp = make_interp(
            handler,
            state=[vector_state("vec", "val", 2), scalar_state("ok", "u32")],
            structs=self.MAP_STRUCTS,
        )
        for _ in range(2):
            interp.run_packet(Packet(ip={}, tcp={}))
            assert interp.global_value("ok") == 1
        interp.run_packet(Packet(ip={}, tcp={}))
        assert interp.global_value("ok") == 0


class TestProfiling:
    def test_block_counts_sum(self):
        interp = make_interp(
            [
                decl("i", "u32", lit(0)),
                while_(C.CmpExpr("<", v("i"), lit(4)), [assign(v("i"), v("i") + 1)]),
                pkt("send", 0).as_stmt(),
            ]
        )
        interp.run_packet(Packet(ip={}, tcp={}))
        prof = interp.profile
        # entry once; loop cond 5x; body 4x; exit once.
        cond = next(b for b in prof.block_counts if b.startswith("while.cond"))
        body = next(b for b in prof.block_counts if b.startswith("while.body"))
        assert prof.block_counts[cond] == 5
        assert prof.block_counts[body] == 4

    def test_stateful_access_counts(self):
        interp = make_interp(
            [
                assign(v("c"), v("c") + 1),
                pkt("send", 0).as_stmt(),
            ],
            state=[scalar_state("c", "u32")],
        )
        for _ in range(10):
            interp.run_packet(Packet(ip={}, tcp={}))
        assert interp.profile.global_access["c"]["load"] == 10
        assert interp.profile.global_access["c"]["store"] == 10
        assert interp.profile.access_frequency("c") == 2.0

    def test_access_vectors_normalized(self):
        interp = make_interp(
            [
                assign(v("c"), v("c") + 1),
                pkt("send", 0).as_stmt(),
            ],
            state=[scalar_state("c", "u32")],
        )
        interp.run_packet(Packet(ip={}, tcp={}))
        blocks = sorted({b for (_g, b) in interp.profile.global_block_access})
        vec = interp.profile.access_vector("c", blocks)
        assert abs(vec.sum() - 1.0) < 1e-9

    def test_sent_dropped_counters(self):
        interp = make_interp(
            [
                decl("ip", "ip_hdr*", pkt("ip_header")),
                if_(
                    eq(fld(v("ip"), "ip_ttl"), 0),
                    [pkt("drop").as_stmt()],
                    [pkt("send", 0).as_stmt()],
                ),
            ]
        )
        interp.run_packet(Packet(ip={"ip_ttl": 0}, tcp={}))
        interp.run_packet(Packet(ip={"ip_ttl": 5}, tcp={}))
        assert interp.profile.dropped == 1
        assert interp.profile.sent == 1

    def test_step_limit_catches_runaway(self):
        interp = make_interp(
            [
                decl("i", "u32", lit(0)),
                while_(C.CmpExpr("<", v("i"), lit(10)), []),  # no increment
                pkt("send", 0).as_stmt(),
            ]
        )
        interp.max_steps = 1000
        with pytest.raises(InterpError, match="step limit"):
            interp.run_packet(Packet(ip={}, tcp={}))
