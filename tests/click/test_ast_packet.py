"""ClickScript AST and packet-model tests."""

import pytest
from hypothesis import given, strategies as st

from repro.click import ast as C
from repro.click.elements._dsl import assign, decl, eq, if_, lit, v
from repro.click.packet import (
    FIELD_TO_HEADER,
    HEADER_FIELD_NAMES,
    Packet,
    header_struct,
)


class TestAst:
    def test_operator_overloading_builds_binexpr(self):
        expr = v("a") + 1
        assert isinstance(expr, C.BinExpr)
        assert expr.op == "+"
        assert isinstance(expr.rhs, C.IntLit)

    def test_reverse_operators(self):
        expr = 32 - v("mlen")
        assert isinstance(expr, C.BinExpr) and expr.op == "-"
        assert isinstance(expr.lhs, C.IntLit) and expr.lhs.value == 32

    def test_python_eq_is_not_overloaded(self):
        # `==` must keep structural dataclass semantics on AST nodes.
        assert v("a") == v("a")
        assert v("a") != v("b")

    def test_unknown_operators_rejected(self):
        with pytest.raises(ValueError):
            C.BinExpr("**", v("a"), v("b"))
        with pytest.raises(ValueError):
            C.CmpExpr("===", v("a"), v("b"))

    def test_state_decl_validation(self):
        with pytest.raises(ValueError):
            C.StateDecl("x", "blob")

    def test_struct_size(self):
        sd = C.StructDef("k", [("a", "u32"), ("b", "u16"), ("c", "u8")])
        assert sd.size_bytes() == 7

    def test_walk_stmts_visits_nested(self):
        stmts = [
            if_(
                eq(v("a"), 1),
                [assign(v("b"), v("a") + 2)],
                [decl("c", "u32", lit(3))],
            )
        ]
        kinds = [type(n).__name__ for n in C.walk_stmts(stmts)]
        assert "IfStmt" in kinds
        assert "AssignStmt" in kinds
        assert "DeclStmt" in kinds
        assert kinds.count("IntLit") >= 2

    def test_element_struct_lookup(self):
        el = C.ElementDef("e", structs=[C.StructDef("k", [("a", "u32")])])
        assert el.struct("k").name == "k"
        with pytest.raises(KeyError):
            el.struct("missing")


class TestPacket:
    def test_defaults_fill_headers(self):
        p = Packet(ip={}, tcp={})
        assert p.ip["ip_v"] == 4
        assert p.ip["ip_hl"] == 5
        assert p.tcp["th_sport"] == 0

    def test_tcp_sets_protocol(self):
        assert Packet(ip={}, tcp={}).ip["ip_p"] == 6
        assert Packet(ip={}, udp={}).ip["ip_p"] == 17

    def test_flow_key_five_tuple(self):
        p = Packet(
            ip={"src_addr": 1, "dst_addr": 2},
            tcp={"th_sport": 10, "th_dport": 20},
        )
        assert p.flow_key() == (1, 2, 10, 20, 6)

    def test_wire_len(self):
        p = Packet(ip={}, tcp={}, payload=b"x" * 100)
        assert p.wire_len == 14 + 20 + 20 + 100

    def test_header_struct_fields_unique_globally(self):
        seen = set()
        for header in ("eth", "ip", "tcp", "udp"):
            for fname, _t in header_struct(header).fields:
                assert fname not in seen, f"duplicate field {fname}"
                seen.add(fname)

    def test_field_registry(self):
        assert "src_addr" in HEADER_FIELD_NAMES
        assert FIELD_TO_HEADER["th_sport"] == "tcp"
        assert FIELD_TO_HEADER["uh_sport"] == "udp"

    def test_header_lookup(self):
        p = Packet(ip={}, udp={})
        assert p.header("udp") is p.udp
        assert p.header("tcp") is None

    @given(st.integers(min_value=0, max_value=2**32 - 1))
    def test_flow_key_deterministic(self, addr):
        p1 = Packet(ip={"src_addr": addr}, tcp={})
        p2 = Packet(ip={"src_addr": addr}, tcp={})
        assert p1.flow_key() == p2.flow_key()
