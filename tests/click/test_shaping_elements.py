"""Behavioural tests for the shaping/load-balancing elements."""


from repro.click.elements import build_element, install_state
from repro.click.frontend import lower_element
from repro.click.interp import Interpreter
from repro.click.packet import Packet


def interp_for(name, state=None, **params):
    interp = Interpreter(lower_element(build_element(name, **params)))
    if state:
        install_state(interp, state)
    return interp


class TestRateLimiter:
    def _packet(self, ts_ns, length=100):
        return Packet(ip={"ip_len": length}, tcp={}, timestamp_ns=ts_ns)

    def test_conforming_traffic_passes(self):
        interp = interp_for(
            "ratelimiter", state={"tokens": 10_000, "last_refill_ns": 0}
        )
        p = self._packet(ts_ns=1000)
        interp.run_packet(p)
        assert p.out_port == 0
        assert interp.global_value("conformed") == 1
        # 100 + 14 bytes charged.
        assert interp.global_value("tokens") <= 10_000 + 64 - 114

    def test_empty_bucket_polices(self):
        interp = interp_for(
            "ratelimiter", state={"tokens": 10, "last_refill_ns": 0}
        )
        p = self._packet(ts_ns=100)  # too soon for any refill
        interp.run_packet(p)
        assert p.dropped
        assert interp.global_value("policed") == 1
        assert interp.global_value("policed_bytes") == 114

    def test_refill_over_time(self):
        interp = interp_for(
            "ratelimiter", state={"tokens": 0, "last_refill_ns": 0},
            rate_tokens_per_us=64,
        )
        # 1ms later: ~64k tokens refilled (capped at the burst).
        p = self._packet(ts_ns=1_000_000)
        interp.run_packet(p)
        assert not p.dropped
        assert interp.global_value("tokens") > 50_000

    def test_burst_cap(self):
        interp = interp_for(
            "ratelimiter",
            state={"tokens": 0, "last_refill_ns": 0},
            burst=1000,
        )
        p = self._packet(ts_ns=10_000_000)  # huge refill window
        interp.run_packet(p)
        assert interp.global_value("tokens") <= 1000

    def test_sustained_rate_enforced(self):
        """At 2x the configured rate, roughly half the traffic is
        policed once the initial burst drains."""
        rate = 64  # tokens/us
        interp = interp_for(
            "ratelimiter",
            state={"tokens": 0, "last_refill_ns": 0},
            rate_tokens_per_us=rate,
            burst=2000,
        )
        # 114-byte cost per packet, one packet per us => need 114
        # tokens/us but refill only 64/us: ~56% should conform.
        for i in range(400):
            interp.run_packet(self._packet(ts_ns=(i + 1) * 1024))
        conformed = interp.global_value("conformed")
        assert 0.35 * 400 < conformed < 0.8 * 400


class TestLoadBalancer:
    def _packet(self, src, sport):
        return Packet(
            ip={"src_addr": src, "dst_addr": 0x0A0A0A0A},
            tcp={"th_sport": sport, "th_dport": 80},
        )

    def _interp(self, **params):
        interp = interp_for("loadbalancer", **params)
        table_size = interp.globals["maglev_table"].tree
        install_state(
            interp,
            {"maglev_table": [i % 8 for i in range(len(table_size))]},
        )
        return interp

    def test_flow_stickiness(self):
        interp = self._interp()
        p1 = self._packet(src=1234, sport=555)
        interp.run_packet(p1)
        first_backend = p1.ip["dst_addr"]
        for _ in range(5):
            p = self._packet(src=1234, sport=555)
            interp.run_packet(p)
            assert p.ip["dst_addr"] == first_backend
        assert interp.global_value("sticky_hits") == 5
        assert interp.global_value("flows_assigned") == 1

    def test_different_flows_spread(self):
        interp = self._interp()
        backends = set()
        for flow in range(40):
            p = self._packet(src=flow * 7919, sport=1000 + flow)
            interp.run_packet(p)
            backends.add(p.ip["dst_addr"])
        assert len(backends) >= 4  # spread over several backends

    def test_dnat_rewrites_destination(self):
        interp = self._interp()
        p = self._packet(src=42, sport=4242)
        interp.run_packet(p)
        assert p.ip["dst_addr"] != 0x0A0A0A0A
        assert p.ip["dst_addr"] >> 16 == 0x0A64

    def test_backend_counters(self):
        interp = self._interp()
        for flow in range(20):
            interp.run_packet(self._packet(src=flow, sport=flow + 1))
        counts = interp.global_value("backend_pkts")
        assert sum(counts) == 20

    def test_non_tcp_dropped(self):
        interp = self._interp()
        p = Packet(ip={}, udp={})
        interp.run_packet(p)
        assert p.dropped
