"""Behavioural tests for the NF element library: every element is
lowered, executed on crafted packets, and its NF-level behaviour is
asserted (the host interpreter is our correctness oracle).
"""

import pytest

from repro.click.elements import (
    ELEMENT_BUILDERS,
    TABLE2_ELEMENTS,
    build_element,
    initial_state,
    install_state,
)
from repro.click.frontend import lower_element
from repro.click.interp import Interpreter
from repro.click.packet import Packet
from repro.click.render import element_loc, render_element
from repro.nfir import verify_module
from repro.workload import generate_trace
from repro.workload.spec import WorkloadSpec


def interp_for(name, state=None, **params):
    element = build_element(name, **params)
    interp = Interpreter(lower_element(element))
    install_state(interp, initial_state(element))
    if state:
        install_state(interp, state)
    return interp


class TestLibraryWide:
    @pytest.mark.parametrize("name", sorted(ELEMENT_BUILDERS))
    def test_lowers_and_verifies(self, name, lowered_library):
        verify_module(lowered_library[name])

    @pytest.mark.parametrize("name", sorted(ELEMENT_BUILDERS))
    def test_renders_nonempty_source(self, name):
        element = build_element(name)
        source = render_element(element)
        assert f"class {name}" in source
        assert element_loc(element) >= 10

    def test_table2_inventory_is_complete(self):
        assert len(TABLE2_ELEMENTS) == 17
        for name in TABLE2_ELEMENTS:
            assert name in ELEMENT_BUILDERS

    @pytest.mark.parametrize("name", sorted(ELEMENT_BUILDERS))
    def test_survives_a_mixed_trace(self, name):
        """Every element must process a generic trace without errors."""
        interp = interp_for(name)
        spec = WorkloadSpec(name="mix", n_flows=50, n_packets=60,
                            udp_fraction=0.3)
        interp.run_trace(generate_trace(spec, seed=2))
        assert interp.profile.packets == 60


class TestNATs:
    def test_mininat_rewrites_known_flow(self):
        interp = interp_for("mininat")
        key = tuple(sorted({"src_ip": 100, "dst_ip": 200}.items()))
        interp.hashmap("int_map").entries[key] = {"int_ip": 999, "int_port": 8080}
        p = Packet(
            ip={"src_addr": 200, "dst_addr": 100, "ip_len": 200},
            tcp={"th_dport": 80, "th_off": 5},
        )
        interp.run_packet(p)
        assert p.ip["dst_addr"] == 999
        assert p.tcp["th_dport"] == 8080

    def test_mininat_drops_unknown_flow(self):
        interp = interp_for("mininat")
        p = Packet(ip={"src_addr": 1, "dst_addr": 2, "ip_len": 200},
                   tcp={"th_off": 5})
        interp.run_packet(p)
        assert p.dropped

    def test_mazunat_allocates_and_reverses(self):
        interp = interp_for("mazunat")
        out = Packet(
            ip={"src_addr": 0x0A000001, "dst_addr": 0x08080808},
            tcp={"th_sport": 1234, "th_dport": 80},
            in_port=0,
        )
        interp.run_packet(out)
        assert out.out_port == 1
        nat_ip, nat_port = out.ip["src_addr"], out.tcp["th_sport"]
        assert nat_ip != 0x0A000001
        # Return traffic reverses through rev_map.
        back = Packet(
            ip={"src_addr": 0x08080808, "dst_addr": nat_ip},
            tcp={"th_sport": 80, "th_dport": nat_port},
            in_port=1,
        )
        interp.run_packet(back)
        assert not back.dropped
        assert back.ip["dst_addr"] == 0x0A000001
        assert back.tcp["th_dport"] == 1234

    def test_mazunat_reuses_mapping(self):
        interp = interp_for("mazunat")
        for _ in range(3):
            p = Packet(
                ip={"src_addr": 0x0A000001, "dst_addr": 0x08080808},
                tcp={"th_sport": 1234, "th_dport": 80},
                in_port=0,
            )
            interp.run_packet(p)
        assert interp.global_value("flows_created") == 1
        assert interp.global_value("pkts_out") == 3

    def test_iprewriter_installs_then_applies(self):
        interp = interp_for("iprewriter")
        p1 = Packet(ip={"src_addr": 5, "dst_addr": 6},
                    tcp={"th_sport": 100, "th_dport": 200})
        interp.run_packet(p1)
        assert interp.global_value("installs") == 1
        p2 = Packet(ip={"src_addr": 5, "dst_addr": 6},
                    tcp={"th_sport": 100, "th_dport": 200})
        interp.run_packet(p2)
        assert interp.global_value("installs") == 1  # reused
        assert p2.ip["src_addr"] == p1.ip["src_addr"]


class TestCountersAndSketches:
    def test_aggcounter_buckets(self):
        interp = interp_for("aggcounter", state={"threshold": 1000})
        for _ in range(4):
            interp.run_packet(
                Packet(ip={"dst_addr": 0x0A000000, "ip_len": 100}, tcp={})
            )
        bucket = 0x0A % 256
        assert interp.global_value("pkt_count")[bucket] == 4
        assert interp.global_value("byte_count")[bucket] == 400
        assert interp.global_value("total_pkts") == 4

    def test_aggcounter_threshold_redirects(self):
        interp = interp_for("aggcounter", state={"threshold": 2})
        ports = []
        for _ in range(3):
            p = Packet(ip={"dst_addr": 0x0A000000, "ip_len": 100}, tcp={})
            interp.run_packet(p)
            ports.append(p.out_port)
        assert ports == [0, 1, 1]

    def test_timefilter_blocks_fast_repeats(self):
        interp = interp_for("timefilter", state={"min_gap_ns": 10_000})
        p1 = Packet(ip={"src_addr": 1, "dst_addr": 2}, tcp={}, timestamp_ns=100_000)
        p2 = Packet(ip={"src_addr": 1, "dst_addr": 2}, tcp={}, timestamp_ns=101_000)
        p3 = Packet(ip={"src_addr": 1, "dst_addr": 2}, tcp={}, timestamp_ns=200_000)
        interp.run_packet(p1)
        interp.run_packet(p2)
        interp.run_packet(p3)
        assert not p1.dropped
        assert p2.dropped  # only 1us after p1
        assert not p3.dropped  # 99us later

    def test_cmsketch_min_estimate_monotone(self):
        interp = interp_for("cmsketch", state={"report_threshold": 4},
                            rows=2, cols=64)
        outs = []
        for _ in range(6):
            p = Packet(ip={"src_addr": 3, "dst_addr": 4}, tcp={})
            interp.run_packet(p)
            outs.append(p.out_port)
        # First three under threshold -> port 0; then port 1.
        assert outs[:3] == [0, 0, 0]
        assert outs[-1] == 1
        assert interp.global_value("updates") == 6

    def test_heavyhitter_flags_heavy_flow(self):
        interp = interp_for("heavyhitter", threshold=5)
        heavy = {"src_addr": 10, "dst_addr": 20}
        for _ in range(6):
            p = Packet(ip=dict(heavy), tcp={})
            interp.run_packet(p)
        assert p.out_port == 1
        assert interp.global_value("heavy_flags") >= 1

    def test_heavyhitter_decays_other_flows(self):
        interp = interp_for("heavyhitter", buckets=1, threshold=1000)
        interp.run_packet(Packet(ip={"src_addr": 1, "dst_addr": 0}, tcp={}))
        first_owner = interp.global_value("owners")[0]
        interp.run_packet(Packet(ip={"src_addr": 2, "dst_addr": 0}, tcp={}))
        # Different flow decremented the count to 0 (space-saving).
        assert interp.global_value("counts")[0] == 0
        interp.run_packet(Packet(ip={"src_addr": 2, "dst_addr": 0}, tcp={}))
        assert interp.global_value("owners")[0] != first_owner

    def test_udpcount_counts_flows(self):
        interp = interp_for("udpcount")
        for sport in (1000, 1000, 2000):
            interp.run_packet(
                Packet(ip={"src_addr": 1, "dst_addr": 2},
                       udp={"uh_sport": sport, "uh_dport": 53})
            )
        assert interp.global_value("flows") == 2
        assert interp.global_value("counter") == 3
        interp.run_packet(Packet(ip={}, tcp={}))  # non-UDP dropped
        assert interp.profile.dropped == 1


class TestLookupAndFirewall:
    def test_iplookup_longest_prefix_wins(self):
        interp = interp_for(
            "iplookup",
            state={
                "n_rules": 2,
                "rule_prefix": [0x0A0A0000, 0x0A000000],
                "rule_masklen": [16, 8],
                "rule_port": [5, 3],
                "default_port": 9,
            },
            n_rules=4,
        )
        cases = [(0x0A0A0101, 5), (0x0A0B0101, 3), (0x0B000001, 9)]
        for dst, want in cases:
            p = Packet(ip={"dst_addr": dst, "ip_ttl": 10}, tcp={})
            interp.run_packet(p)
            assert p.out_port == want, hex(dst)

    def test_iplookup_ttl_expiry(self):
        interp = interp_for("iplookup", state={"default_port": 0})
        p = Packet(ip={"dst_addr": 1, "ip_ttl": 1}, tcp={})
        interp.run_packet(p)
        assert p.dropped

    def test_ipclassifier_unmatched_drops(self):
        interp = interp_for("ipclassifier", n_rules=8)
        p = Packet(ip={"dst_addr": 0, "ip_p": 99}, tcp={})
        p.ip["ip_p"] = 99  # protocol matching no rule
        interp.run_packet(p)
        assert p.dropped
        assert interp.global_value("unmatched") == 1

    def test_firewall_full_lifecycle(self):
        interp = interp_for(
            "firewall",
            state={
                "n_acl": 1,
                "acl_prefix": [0x0A000000],
                "acl_mask": [0xFF000000],
                "acl_action": [1],
            },
        )
        syn = Packet(ip={"src_addr": 1, "dst_addr": 0x0A000007},
                     tcp={"th_flags": 0x02, "th_sport": 5, "th_dport": 80})
        interp.run_packet(syn)
        assert not syn.dropped
        data = Packet(ip={"src_addr": 1, "dst_addr": 0x0A000007},
                      tcp={"th_flags": 0x10, "th_sport": 5, "th_dport": 80})
        interp.run_packet(data)
        assert not data.dropped
        assert interp.global_value("fast_hits") == 1
        # Non-SYN without state drops.
        stray = Packet(ip={"src_addr": 9, "dst_addr": 0x0A000007},
                       tcp={"th_flags": 0x10})
        interp.run_packet(stray)
        assert stray.dropped
        # SYN to non-ACL destination drops.
        bad = Packet(ip={"src_addr": 9, "dst_addr": 0x0B000007},
                     tcp={"th_flags": 0x02})
        interp.run_packet(bad)
        assert bad.dropped
        assert interp.global_value("acl_drops") == 1


class TestDpiAndCrypto:
    def test_dpi_detects_signature(self):
        interp = interp_for("dpi")
        bad = Packet(ip={}, tcp={}, payload=b"GET /etc/passwd HTTP/1.0")
        interp.run_packet(bad)
        assert bad.dropped
        assert interp.global_value("alerts") == 1

    def test_dpi_passes_clean_payload(self):
        interp = interp_for("dpi")
        ok = Packet(ip={}, tcp={}, payload=b"GET /index.html HTTP/1.0")
        interp.run_packet(ok)
        assert not ok.dropped

    def test_dpi_signature_at_end_of_scan_window(self):
        interp = interp_for("dpi", scan_limit=32)
        payload = b"A" * 20 + b"EXPLOIT"
        p = Packet(ip={}, tcp={}, payload=payload)
        interp.run_packet(p)
        assert p.dropped

    def test_wepdecap_decrypts_deterministically(self):
        a = interp_for("wepdecap", state={"wep_key": 0xDEADBEEF})
        b = interp_for("wepdecap", state={"wep_key": 0xDEADBEEF})
        pa = Packet(ip={"ip_id": 7}, tcp={}, payload=b"secret!!")
        pb = Packet(ip={"ip_id": 7}, tcp={}, payload=b"secret!!")
        a.run_packet(pa)
        b.run_packet(pb)
        assert pa.payload == pb.payload
        assert pa.payload != b"secret!!"
        assert a.global_value("decapsulated") == 1

    def test_wepdecap_key_changes_output(self):
        a = interp_for("wepdecap", state={"wep_key": 1})
        b = interp_for("wepdecap", state={"wep_key": 2})
        pa = Packet(ip={"ip_id": 7}, tcp={}, payload=b"secret!!")
        pb = Packet(ip={"ip_id": 7}, tcp={}, payload=b"secret!!")
        a.run_packet(pa)
        b.run_packet(pb)
        assert pa.payload != pb.payload


class TestGenerators:
    def test_tcpgen_handshake_then_ack(self):
        interp = interp_for(
            "tcpgen", state={"sport": 80, "dport": 1234, "iss": 1000}
        )
        synack = Packet(
            ip={},
            tcp={"th_sport": 1234, "th_dport": 80, "th_ack": 1001, "th_seq": 50},
        )
        interp.run_packet(synack)
        assert interp.global_value("tcp_state") == 1
        assert interp.global_value("send_next") == 1001
        assert interp.global_value("recv_next") == 51
        assert interp.global_value("good_pkt") == 1
        stray = Packet(ip={}, tcp={"th_sport": 9, "th_dport": 9})
        interp.run_packet(stray)
        assert interp.global_value("bad_pkt") == 1
        assert stray.dropped

    def test_webtcp_serves_object(self):
        interp = interp_for("webtcp", state={"object_size": 3000})
        syn = Packet(ip={}, tcp={"th_flags": 0x02, "th_seq": 10})
        interp.run_packet(syn)
        assert interp.global_value("bytes_left") == 3000
        ack = Packet(ip={}, tcp={"th_flags": 0x10})
        interp.run_packet(ack)
        assert interp.global_value("bytes_left") == 3000 - 2920
        interp.run_packet(Packet(ip={}, tcp={"th_flags": 0x10}))
        assert interp.global_value("bytes_left") == 0
        fin = Packet(ip={}, tcp={"th_flags": 0x10})
        interp.run_packet(fin)
        assert fin.tcp["th_flags"] == 0x11  # FIN|ACK
        assert interp.global_value("responses_done") == 1

    def test_webgen_emits_requests(self):
        interp = interp_for(
            "webgen", state={"size_table": [100 * (i + 1) for i in range(16)]}
        )
        p = Packet(ip={"src_addr": 77}, tcp={})
        interp.run_packet(p)
        assert p.tcp["th_dport"] == 80
        assert p.tcp["th_flags"] == 0x02
        assert interp.global_value("requests_sent") == 1
        assert len(interp.vector("flows").items) == 1

    def test_dnsproxy_cache_miss_then_hit(self):
        interp = interp_for("dnsproxy", state={"upstream_ip": 0x08080808})
        query_payload = bytes([0x12, 0x34, 0, 0, 0, 1, 0, 0, 0, 0, 0, 0]) + b"example"
        query = Packet(
            ip={"src_addr": 111, "dst_addr": 222},
            udp={"uh_sport": 5353, "uh_dport": 53},
            payload=query_payload,
        )
        interp.run_packet(query)
        assert query.out_port == 1  # forwarded upstream
        assert query.ip["dst_addr"] == 0x08080808
        assert interp.global_value("cache_misses") == 1
        # Upstream response with the same DNS id fills the cache.
        response = Packet(
            ip={"src_addr": 0x08080808, "dst_addr": 222},
            udp={"uh_sport": 53, "uh_dport": 5353},
            payload=query_payload,
        )
        interp.run_packet(response)
        assert interp.global_value("responses") == 1
        assert response.ip["dst_addr"] == 111  # returned to client
        # Same query now hits the cache.
        query2 = Packet(
            ip={"src_addr": 111, "dst_addr": 222},
            udp={"uh_sport": 5353, "uh_dport": 53},
            payload=query_payload,
        )
        interp.run_packet(query2)
        assert interp.global_value("cache_hits") == 1
        assert query2.out_port == 0


class TestStatelessElements:
    def test_anonipaddr_preserves_class_a(self):
        interp = interp_for("anonipaddr")
        p = Packet(ip={"src_addr": 0x0A111111, "dst_addr": 0x0B222222}, tcp={})
        interp.run_packet(p)
        assert p.ip["src_addr"] >> 24 == 0x0A
        assert p.ip["dst_addr"] >> 24 == 0x0B
        assert p.ip["src_addr"] != 0x0A111111

    def test_anonipaddr_is_deterministic(self):
        a, b = interp_for("anonipaddr"), interp_for("anonipaddr")
        pa = Packet(ip={"src_addr": 123456}, tcp={})
        pb = Packet(ip={"src_addr": 123456}, tcp={})
        a.run_packet(pa)
        b.run_packet(pb)
        assert pa.ip["src_addr"] == pb.ip["src_addr"]

    def test_tcpack_swaps_and_acks(self):
        interp = interp_for("tcpack")
        p = Packet(
            ip={"src_addr": 1, "dst_addr": 2, "ip_len": 140},
            tcp={"th_sport": 10, "th_dport": 20, "th_seq": 100, "th_off": 5},
        )
        interp.run_packet(p)
        assert (p.ip["src_addr"], p.ip["dst_addr"]) == (2, 1)
        assert (p.tcp["th_sport"], p.tcp["th_dport"]) == (20, 10)
        # seg_len = 140 - (5+5)*4 = 100 -> ack = 200.
        assert p.tcp["th_ack"] == 200
        assert p.tcp["th_flags"] == 0x10

    def test_tcpack_syn_consumes_sequence_slot(self):
        interp = interp_for("tcpack")
        p = Packet(
            ip={"ip_len": 40},
            tcp={"th_seq": 100, "th_flags": 0x02, "th_off": 5},
        )
        interp.run_packet(p)
        assert p.tcp["th_ack"] == 101

    def test_udpipencap_sets_outer_header(self):
        interp = interp_for("udpipencap")
        p = Packet(ip={"ip_len": 100, "src_addr": 42}, udp={})
        interp.run_packet(p)
        assert p.ip["ip_p"] == 17
        assert p.ip["ip_len"] == 128
        assert p.udp["uh_dport"] == 4789
        assert p.udp["uh_ulen"] == 108

    def test_forcetcp_clamps_offsets(self):
        interp = interp_for("forcetcp")
        p = Packet(ip={"ip_len": 10}, tcp={"th_off": 1, "th_flags": 0x06,
                                           "th_win": 0})
        interp.run_packet(p)
        assert p.tcp["th_off"] == 5
        assert p.ip["ip_len"] >= 40
        assert p.tcp["th_win"] == 1024
        # RST had SYN stripped.
        assert p.tcp["th_flags"] & 0x02 == 0

    def test_tcpresp_synack_for_syn(self):
        interp = interp_for("tcpresp")
        p = Packet(ip={"src_addr": 1, "dst_addr": 2},
                   tcp={"th_flags": 0x02, "th_seq": 500})
        interp.run_packet(p)
        assert p.tcp["th_flags"] == 0x12  # SYN|ACK
        assert p.tcp["th_ack"] == 501
        assert (p.ip["src_addr"], p.ip["dst_addr"]) == (2, 1)

    def test_tcpresp_finack_for_fin(self):
        interp = interp_for("tcpresp")
        p = Packet(ip={}, tcp={"th_flags": 0x01, "th_seq": 500})
        interp.run_packet(p)
        assert p.tcp["th_flags"] == 0x11
        assert p.tcp["th_ack"] == 501
