"""Differential semantics fuzzing: the (frontend -> NFIR ->
interpreter) pipeline must agree with a direct Python evaluation of the
same ClickScript expression, including wrapping, promotions, shifts,
and division-by-zero conventions.
"""

from hypothesis import given, settings, strategies as st

from repro.click import ast as C
from repro.click.elements._dsl import assign, decl, lit, scalar_state, v
from repro.click.frontend import lower_element
from repro.click.interp import Interpreter
from repro.click.packet import Packet

WIDTH_BITS = {"u8": 8, "u16": 16, "u32": 32, "u64": 64}


def py_eval(expr: C.Expr, env):
    """Reference evaluator mirroring the documented semantics:
    unsigned wrapping at each op's promoted width, shift counts mod
    width, x/0 == x%0 == 0."""
    if isinstance(expr, C.IntLit):
        return expr.value & ((1 << WIDTH_BITS[expr.type]) - 1), WIDTH_BITS[expr.type]
    if isinstance(expr, C.VarRef):
        value, bits = env[expr.name]
        return value, bits
    if isinstance(expr, C.BinExpr):
        lv, lb = py_eval(expr.lhs, env)
        rv, rb = py_eval(expr.rhs, env)
        bits = max(lb, rb)
        mask = (1 << bits) - 1
        lv &= mask
        rv &= mask
        op = expr.op
        if op == "+":
            out = lv + rv
        elif op == "-":
            out = lv - rv
        elif op == "*":
            out = lv * rv
        elif op == "/":
            out = lv // rv if rv else 0
        elif op == "%":
            out = lv % rv if rv else 0
        elif op == "&":
            out = lv & rv
        elif op == "|":
            out = lv | rv
        elif op == "^":
            out = lv ^ rv
        elif op == "<<":
            out = lv << (rv % bits)
        elif op == ">>":
            out = lv >> (rv % bits)
        else:  # pragma: no cover
            raise ValueError(op)
        return out & mask, bits
    raise TypeError(expr)  # pragma: no cover


@st.composite
def expressions(draw, depth=0):
    """Random ClickScript arithmetic over three pre-bound variables."""
    if depth >= 3 or draw(st.booleans()):
        choice = draw(st.integers(0, 3))
        if choice == 0:
            return C.IntLit(
                draw(st.integers(0, 2**32 - 1)),
                draw(st.sampled_from(["u8", "u16", "u32"])),
            )
        return C.VarRef(draw(st.sampled_from(["va", "vb", "vc"])))
    op = draw(st.sampled_from(list(C.BIN_OPS)))
    lhs = draw(expressions(depth=depth + 1))
    rhs = draw(expressions(depth=depth + 1))
    return C.BinExpr(op, lhs, rhs)


@given(
    expr=expressions(),
    a=st.integers(0, 2**8 - 1),
    b=st.integers(0, 2**16 - 1),
    c=st.integers(0, 2**32 - 1),
)
@settings(max_examples=60, deadline=None)
def test_pipeline_matches_reference(expr, a, b, c):
    element = C.ElementDef(
        "diff",
        state=[scalar_state("out", "u64")],
        handler=[
            decl("va", "u8", lit(a, "u8")),
            decl("vb", "u16", lit(b, "u16")),
            decl("vc", "u32", lit(c, "u32")),
            assign(v("out"), expr),
        ],
    )
    module = lower_element(element)
    interp = Interpreter(module)
    interp.run_packet(Packet(ip={}, tcp={}))
    measured = interp.global_value("out")

    env = {"va": (a, 8), "vb": (b, 16), "vc": (c, 32)}
    expected, bits = py_eval(expr, env)
    # The store into the u64 slot zero-extends the promoted result.
    assert measured == expected & ((1 << bits) - 1)
