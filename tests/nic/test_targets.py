"""Target-registry tests: description round-trips, registration
discipline, cross-target model divergence, per-target cache keys, and
the removed pre-registry import surface."""


import pytest

from repro.core.artifacts import TrainConfig, train_cache_key
from repro.errors import UnknownTargetError
from repro.nic.machine import NICModel
from repro.nic.regions import (
    REGION_CLS,
    REGION_CTM,
    REGION_EMEM,
    REGION_EMEM_CACHE,
    REGION_IMEM,
    REGION_LMEM,
    MemRegion,
)
from repro.nic.targets import (
    DEFAULT_TARGET,
    DPU_OFFPATH,
    NFP_4000,
    TargetDescription,
    get_target,
    list_targets,
    register_target,
    resolve_target,
    target_fingerprint,
)


REGION_NAMES = (REGION_CLS, REGION_CTM, REGION_IMEM, REGION_EMEM,
                REGION_EMEM_CACHE, REGION_LMEM)


def custom_target(name="test-nic", **overrides):
    """A small but complete description for registry tests."""
    fields = dict(
        name=name,
        display_name="Test NIC",
        n_cores=4,
        threads_per_core=2,
        freq_hz=1.0e9,
        line_rate_gbps=10.0,
        regions=tuple(
            MemRegion(region, 1024 * (i + 1), 10 * (i + 1), 1.0)
            for i, region in enumerate(REGION_NAMES)
        ),
    )
    fields.update(overrides)
    return TargetDescription(**fields)


class TestRegistry:
    def test_builtins_registered(self):
        assert DEFAULT_TARGET == "nfp-4000"
        assert set(list_targets()) >= {"nfp-4000", "dpu-offpath"}
        assert get_target("nfp-4000") is NFP_4000
        assert get_target("dpu-offpath") is DPU_OFFPATH

    def test_unknown_target_is_typed_error(self):
        with pytest.raises(UnknownTargetError) as excinfo:
            get_target("no-such-nic")
        assert "no-such-nic" in str(excinfo.value)
        assert excinfo.value.http_status == 404

    def test_duplicate_registration_rejected(self):
        with pytest.raises(ValueError, match="already registered"):
            register_target(custom_target(name="nfp-4000"))

    def test_resolve_accepts_name_none_and_description(self):
        assert resolve_target(None) is NFP_4000
        assert resolve_target("dpu-offpath") is DPU_OFFPATH
        custom = custom_target()
        assert resolve_target(custom) is custom


class TestDescription:
    def test_round_trip(self):
        for desc in (NFP_4000, DPU_OFFPATH, custom_target()):
            clone = TargetDescription.from_dict(desc.to_dict())
            assert clone == desc
            assert clone.to_dict() == desc.to_dict()

    def test_bad_schema_rejected(self):
        payload = NFP_4000.to_dict()
        payload["schema"] = 999
        with pytest.raises(ValueError, match="schema"):
            TargetDescription.from_dict(payload)

    def test_requires_all_region_names(self):
        with pytest.raises(ValueError, match="region"):
            custom_target(regions=(MemRegion("cls", 64, 2, 1.0),))

    def test_accel_support_and_latency(self):
        assert NFP_4000.supports("csum")
        assert not custom_target(accel_ops=("crc",)).supports("csum")
        assert DPU_OFFPATH.accel_latency("crc") < NFP_4000.accel_latency("crc")

    def test_fingerprint_ignores_cosmetics(self):
        renamed = custom_target(display_name="Marketing Name 9000",
                                description="different words")
        assert target_fingerprint(renamed) == \
            target_fingerprint(custom_target())


class TestModelDivergence:
    """The two built-ins must actually disagree where their hardware
    differs — an accelerator-heavy element is the clearest probe."""

    @staticmethod
    def demand(target):
        from repro.click.elements import build_element
        from repro.core.prepare import prepare_element
        from repro.nic.compiler import compile_module
        from repro.nic.port import PortConfig
        from repro.workload import characterize
        from repro.workload.spec import WorkloadSpec

        prepared = prepare_element(build_element("wepdecap"))
        model = NICModel(target=target)
        base = compile_module(prepared.module)
        names = frozenset(
            block.name for block in base.functions["pkt_handler"].blocks
        )
        program = compile_module(
            prepared.module,
            PortConfig(use_checksum_accel=True, crypto_accel_blocks=names),
            target=model.target,
        )
        freq = {
            block.name: 1.0
            for block in program.functions["pkt_handler"].blocks
        }
        workload = characterize(WorkloadSpec(name="probe"),
                                hierarchy=model.hierarchy)
        return model, model.packet_demand(program, freq, workload)

    def test_accel_heavy_element_diverges(self):
        nfp_model, nfp = self.demand("nfp-4000")
        dpu_model, dpu = self.demand("dpu-offpath")
        # Faster accelerator table and byte rates on the DPU...
        assert nfp.accel_cycles > 0
        assert dpu.accel_cycles - DPU_OFFPATH.host_dma_cycles < \
            nfp.accel_cycles
        # ...but every packet pays the host-DMA hop.
        assert dpu.accel_cycles >= DPU_OFFPATH.host_dma_cycles
        assert nfp_model.target.host_dma_cycles == 0.0

    def test_nfp_matches_pre_registry_default(self):
        """NICModel() without a target is exactly the old NFP model."""
        model = NICModel()
        assert model.target is NFP_4000
        assert (model.n_cores, model.threads_per_core) == (60, 8)
        assert model.freq_hz == 1.2e9
        assert model.line_rate_gbps == 40.0
        assert model.hierarchy.regions.keys() == \
            NICModel(target="dpu-offpath").hierarchy.regions.keys()


class TestCacheKeys:
    def test_per_target_keys_do_not_collide(self):
        config = TrainConfig.quick()
        keys = {
            name: train_cache_key(config, seed=0,
                                  nic=NICModel(target=name))
            for name in ("nfp-4000", "dpu-offpath")
        }
        assert keys["nfp-4000"] != keys["dpu-offpath"]

    def test_same_target_same_key(self):
        config = TrainConfig.quick()
        first = train_cache_key(config, seed=0, nic=NICModel())
        second = train_cache_key(config, seed=0,
                                 nic=NICModel(target="nfp-4000"))
        assert first == second


class TestDeprecationShimRemoved:
    def test_default_hierarchy_alias_is_gone(self):
        # The one-release shim completed its cycle; the hierarchy now
        # belongs to a TargetDescription.
        import repro.nic as nic

        with pytest.raises(AttributeError):
            nic.default_hierarchy

    def test_unknown_attribute_still_raises(self):
        import repro.nic as nic

        with pytest.raises(AttributeError):
            nic.definitely_not_a_symbol
