"""Library cost profiles, port configs, and reverse-port consistency."""

import pytest

from repro.click.frontend import lower_element
from repro.click.interp import Interpreter
from repro.click.packet import Packet
from repro.click.reverse_port import (
    BUCKET_WAYS,
    REVERSE_PORTS,
    reverse_port_element,
)
from repro.nic.libnfp import (
    api_cost,
    derive_from_reverse_port,
    sw_checksum_cycles,
)
from repro.nic.port import CoalescePack, PortConfig, naive_port
from repro.nic.regions import REGION_EMEM


class TestLibnfp:
    def test_every_stateful_api_has_a_cost(self):
        for name in (
            "hashmap_find", "hashmap_insert", "hashmap_erase",
            "vector_at", "vector_push", "vector_remove",
        ):
            cost = api_cost(name)
            assert cost.cycles > 0
            assert cost.accesses

    def test_unknown_api_gets_conservative_default(self):
        cost = api_cost("mystery_api")
        assert cost.cycles > 0

    def test_sw_checksum_matches_paper_anecdote(self):
        # "Header checksums require 2000+ cycles on the general-purpose
        # cores" — for a typical packet.
        assert sw_checksum_cycles(220) >= 2000.0
        assert sw_checksum_cycles(64) < sw_checksum_cycles(1500)

    def test_insert_costs_more_than_find(self):
        assert api_cost("hashmap_insert").cycles > api_cost("hashmap_find").cycles

    @pytest.mark.parametrize("api", ["hashmap_find", "hashmap_insert",
                                     "hashmap_erase", "vector_at"])
    def test_static_table_consistent_with_reverse_port(self, api):
        """The analytic cycle numbers must stay within 3x of the cost
        of the actual reverse-ported implementation as compiled by the
        NFCC (the two describe the same routine)."""
        compiled = derive_from_reverse_port(api)
        static = api_cost(api).cycles
        assert compiled > 0
        assert static / 3.0 <= compiled <= static * 6.0


class TestReversePorts:
    def test_all_reverse_ports_lower_and_run(self):
        for api in REVERSE_PORTS:
            element = reverse_port_element(api, table_entries=16)
            module = lower_element(element)
            interp = Interpreter(module)
            interp.globals["n_buckets"].tree = 16
            interp.globals["cap"].tree = 16
            interp.run_packet(Packet(ip={"src_addr": 5, "dst_addr": 9}, tcp={}))
            assert interp.profile.packets == 1

    def test_reverse_port_find_control_flow(self):
        """NIC-style find probes fixed bucket ways — inserting then
        finding through the reverse port behaves like a hash table."""
        element = reverse_port_element("hashmap_insert", table_entries=16)
        module = lower_element(element)
        interp = Interpreter(module)
        interp.globals["n_buckets"].tree = 16
        interp.run_packet(Packet(ip={"src_addr": 3, "dst_addr": 4}, tcp={}))
        assert interp.global_value("last_result") == 1  # insert succeeded
        tags = interp.global_value("tags")
        assert sum(1 for t in tags if t != 0) == 1

    def test_bucket_ways_bounded(self):
        assert 2 <= BUCKET_WAYS <= 8

    def test_erase_marks_invalid_not_shrinks(self):
        """Section 3.3: deletion only marks entries invalid."""
        # Insert then erase through the reverse-ported routines shares
        # the tags array; the value slot survives.
        ins = reverse_port_element("hashmap_insert", table_entries=8)
        module = lower_element(ins)
        interp = Interpreter(module)
        interp.globals["n_buckets"].tree = 8
        interp.run_packet(Packet(ip={"src_addr": 3, "dst_addr": 4}, tcp={}))
        vals_after_insert = list(interp.global_value("vals"))
        assert any(vals_after_insert)


class TestPortConfig:
    def test_naive_port_defaults(self):
        config = naive_port()
        assert not config.use_checksum_accel
        assert config.region_of("anything") == REGION_EMEM
        assert config.cores == 60

    def test_pack_lookup(self):
        pack = CoalescePack(("a", "b"), 8)
        config = PortConfig(packs=[pack])
        assert config.pack_of("a") is pack
        assert config.pack_of("c") is None

    def test_empty_pack_rejected(self):
        with pytest.raises(ValueError):
            CoalescePack((), 8)

    def test_zero_size_pack_rejected(self):
        with pytest.raises(ValueError):
            CoalescePack(("a",), 0)

    def test_cores_validated(self):
        with pytest.raises(ValueError):
            PortConfig(cores=0).validate([])
