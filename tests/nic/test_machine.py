"""Performance-model tests: bounds, monotonicity, contention, and the
paper's qualitative phenomena (accelerator wins, placement wins,
workload-dependent knees)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.click.elements import build_element, initial_state, install_state
from repro.click.frontend import lower_element
from repro.click.interp import Interpreter
from repro.nic import (
    NICModel,
    PortConfig,
    compile_module,
    get_target,
    simulate_colocation,
)
from repro.nic.machine import WorkloadCharacter
from repro.nic.regions import REGION_CLS, REGION_EMEM, REGION_IMEM
from repro.workload import LARGE_FLOWS, SMALL_FLOWS, characterize, generate_trace
from repro.workload.spec import WorkloadSpec


def profiled(name, spec=None, state=None, **params):
    element = build_element(name, **params)
    module = lower_element(element)
    interp = Interpreter(module)
    install_state(interp, initial_state(element))
    if state:
        install_state(interp, state)
    spec = spec or WorkloadSpec(name="t", n_flows=500, n_packets=200)
    profile = interp.run_trace(generate_trace(spec, seed=0))
    freq = {b: c / profile.packets for b, c in profile.block_counts.items()}
    return module, freq, profile


@pytest.fixture(scope="module")
def mazunat_profiled():
    return profiled("mazunat")


@pytest.fixture(scope="module")
def model():
    return NICModel()


class TestBasicBounds:
    def test_throughput_capped_by_line_rate(self, model, mazunat_profiled):
        module, freq, _ = mazunat_profiled
        prog = compile_module(module, PortConfig(use_checksum_accel=True))
        wc = WorkloadCharacter(packet_bytes=256, emem_cache_hit_rate=1.0)
        perf = model.simulate(prog, freq, wc, cores=60)
        assert perf.throughput_mpps <= model.line_rate_pps(256) / 1e6 + 1e-9

    def test_single_core_is_slowest(self, model, mazunat_profiled):
        module, freq, _ = mazunat_profiled
        prog = compile_module(module)
        wc = WorkloadCharacter()
        one = model.simulate(prog, freq, wc, cores=1)
        many = model.simulate(prog, freq, wc, cores=30)
        assert many.throughput_mpps > one.throughput_mpps

    def test_throughput_monotone_in_cores(self, model, mazunat_profiled):
        module, freq, _ = mazunat_profiled
        prog = compile_module(module)
        for wc in (
            WorkloadCharacter(emem_cache_hit_rate=0.2),
            WorkloadCharacter(emem_cache_hit_rate=0.9),
        ):
            sweep = model.sweep_cores(prog, freq, wc)
            values = [sweep[c].throughput_mpps for c in sorted(sweep)]
            assert all(b >= a - 1e-9 for a, b in zip(values, values[1:]))

    def test_latency_nondecreasing_in_cores(self, model, mazunat_profiled):
        module, freq, _ = mazunat_profiled
        prog = compile_module(module)
        wc = WorkloadCharacter(emem_cache_hit_rate=0.3)
        sweep = model.sweep_cores(prog, freq, wc)
        lats = [sweep[c].latency_us for c in sorted(sweep)]
        assert all(b >= a - 1e-9 for a, b in zip(lats, lats[1:]))

    def test_latency_positive_and_finite(self, model, mazunat_profiled):
        module, freq, _ = mazunat_profiled
        prog = compile_module(module)
        perf = model.simulate(prog, freq, WorkloadCharacter(), cores=10)
        assert 0.1 < perf.latency_us < 1000.0

    @given(cores=st.integers(min_value=1, max_value=60))
    @settings(max_examples=10, deadline=None)
    def test_any_core_count_is_well_formed(self, cores):
        module, freq, _ = profiled("aggcounter")
        prog = compile_module(module)
        perf = NICModel().simulate(prog, freq, WorkloadCharacter(), cores=cores)
        assert perf.throughput_mpps > 0
        assert perf.latency_us > 0
        assert perf.bound in ("compute", "concurrency", "line_rate", "bandwidth")


class TestPlacementEffects:
    def test_faster_region_lowers_latency(self, model):
        module, freq, _ = profiled("aggcounter")
        wc = WorkloadCharacter(emem_cache_hit_rate=0.0)
        slow = model.simulate(
            compile_module(module, PortConfig()), freq, wc, cores=8
        )
        fast = model.simulate(
            compile_module(
                module,
                PortConfig(
                    placement={g: REGION_CLS for g in module.globals}
                ),
            ),
            freq,
            wc,
            cores=8,
        )
        assert fast.latency_us < slow.latency_us
        assert fast.throughput_mpps >= slow.throughput_mpps

    def test_emem_cache_hit_rate_matters(self, model):
        module, freq, _ = profiled("aggcounter")
        prog = compile_module(module)
        cold = model.simulate(
            prog, freq, WorkloadCharacter(emem_cache_hit_rate=0.0), cores=8
        )
        warm = model.simulate(
            prog, freq, WorkloadCharacter(emem_cache_hit_rate=1.0), cores=8
        )
        assert warm.latency_us < cold.latency_us


class TestAcceleratorEffects:
    def test_checksum_accel_cuts_latency(self, model, mazunat_profiled):
        module, freq, _ = mazunat_profiled
        wc = WorkloadCharacter(packet_bytes=256)
        soft = model.simulate(compile_module(module, PortConfig()), freq, wc, cores=20)
        hard = model.simulate(
            compile_module(module, PortConfig(use_checksum_accel=True)),
            freq, wc, cores=20,
        )
        assert hard.latency_us < soft.latency_us
        assert hard.throughput_mpps >= soft.throughput_mpps

    def test_crc_accel_helps_cmsketch(self, model):
        module, freq, _ = profiled("cmsketch")
        crc_blocks = frozenset(
            b.name for b in module.handler.blocks
            if b.name.startswith("inl.crc32_hash")
        )
        wc = WorkloadCharacter()
        # Clara's port also places the sketch in SRAM; with the memory
        # side equalized, the accelerator strictly wins on both axes.
        placement = {"counters": REGION_IMEM}
        naive = model.simulate(
            compile_module(module, PortConfig(placement=placement)),
            freq, wc, cores=10,
        )
        accel = model.simulate(
            compile_module(
                module,
                PortConfig(crc_accel_blocks=crc_blocks, placement=placement),
            ),
            freq, wc, cores=10,
        )
        assert accel.compute_cycles < naive.compute_cycles
        assert accel.throughput_mpps > naive.throughput_mpps
        assert accel.latency_us < naive.latency_us

    def test_lpm_flow_cache_order_of_magnitude(self, model):
        state = {
            "n_rules": 256,
            "rule_prefix": [0] * 256,
            "rule_masklen": [32] * 256,
            "rule_port": [1] * 256,
        }
        module, freq, _ = profiled("iplookup", state=state, n_rules=256)
        loop_blocks = frozenset(
            b.name for b in module.handler.blocks if b.name.startswith("while.")
        )
        naive = model.simulate(
            compile_module(module), freq, WorkloadCharacter(), cores=10
        )
        wc = WorkloadCharacter(
            flow_cache_hit_rate=0.95,
            lpm_miss_penalty_cycles=naive.per_packet_cycles,
        )
        accel = model.simulate(
            compile_module(module, PortConfig(lpm_accel_blocks=loop_blocks)),
            freq, wc, cores=10,
        )
        assert naive.latency_us / accel.latency_us > 3.0


class TestWorkloadKnees:
    def test_small_flows_need_more_cores(self, model):
        """Cache-hostile traffic peaks later in core count (paper
        Section 5.4), for a tuned (checksum-accelerated) port."""
        module, freq, _ = profiled("mazunat")
        prog = compile_module(
            module,
            PortConfig(use_checksum_accel=True,
                       placement={"fwd_map": REGION_IMEM, "rev_map": REGION_IMEM}),
        )
        opt = {}
        for spec in (LARGE_FLOWS, SMALL_FLOWS):
            wc = characterize(spec)
            sweep = model.sweep_cores(prog, freq, wc)
            opt[spec.name] = model.optimal_cores(sweep)
        assert opt["small_flows"] >= opt["large_flows"]

    def test_knee_is_internal_for_memory_bound_nf(self, model):
        module, freq, _ = profiled("mazunat", spec=WorkloadSpec(
            name="hot", n_flows=50_000, n_packets=200))
        prog = compile_module(module, PortConfig(use_checksum_accel=True))
        wc = WorkloadCharacter(emem_cache_hit_rate=0.2)
        sweep = model.sweep_cores(prog, freq, wc)
        knee = model.optimal_cores(sweep)
        assert 1 <= knee <= 60
        # Past the knee, the ratio does not improve.
        assert sweep[min(knee + 10, 60)].tput_lat_ratio <= sweep[knee].tput_lat_ratio + 1e-9


class TestColocation:
    def test_colocation_degrades_throughput(self, model):
        module_a, freq_a, _ = profiled("mazunat")
        module_b, freq_b, _ = profiled("udpcount", spec=WorkloadSpec(
            name="u", n_flows=500, n_packets=200, udp_fraction=1.0))
        wc = WorkloadCharacter(emem_cache_hit_rate=0.2)
        result = simulate_colocation(
            model,
            compile_module(module_a), freq_a,
            compile_module(module_b), freq_b,
            wc,
        )
        assert result.total_throughput_loss >= -1e-9
        assert result.perf_a.throughput_mpps <= result.solo_a.throughput_mpps + 1e-9
        assert result.perf_b.throughput_mpps <= result.solo_b.throughput_mpps + 1e-9

    def test_memory_heavy_pairs_interfere_more(self, model):
        mem_mod, mem_freq, _ = profiled("mazunat")
        cpu_mod, cpu_freq, _ = profiled("anonipaddr")
        wc = WorkloadCharacter(emem_cache_hit_rate=0.0)
        mem_prog = compile_module(mem_mod)
        cpu_prog = compile_module(cpu_mod)
        mm = simulate_colocation(model, mem_prog, mem_freq, mem_prog, mem_freq, wc)
        mc = simulate_colocation(model, mem_prog, mem_freq, cpu_prog, cpu_freq, wc)
        assert mm.total_throughput_loss >= mc.total_throughput_loss - 1e-9

    def test_compute_only_pairs_friendly(self, model):
        cpu_mod, cpu_freq, _ = profiled("anonipaddr")
        wc = WorkloadCharacter()
        prog = compile_module(cpu_mod)
        result = simulate_colocation(model, prog, cpu_freq, prog, cpu_freq, wc)
        assert result.total_throughput_loss < 0.2


class TestRegions:
    def test_hierarchy_ordering(self):
        h = get_target("nfp-4000").hierarchy()
        placeable = h.placeable
        lats = [r.latency_cycles for r in placeable]
        caps = [r.capacity_bytes for r in placeable]
        assert lats == sorted(lats)
        assert caps == sorted(caps)

    def test_scaled_override(self):
        h = get_target("nfp-4000").hierarchy()
        h2 = h.scaled(REGION_EMEM, latency_cycles=500)
        assert h2.latency(REGION_EMEM) == 500
        assert h.latency(REGION_EMEM) == 300  # original untouched

    def test_workload_character_validation(self):
        with pytest.raises(ValueError):
            WorkloadCharacter(emem_cache_hit_rate=1.5)
        with pytest.raises(ValueError):
            WorkloadCharacter(flow_cache_hit_rate=-0.1)
