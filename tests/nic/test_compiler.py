"""NFCC compiler tests: instruction selection, fusion, register
allocation, immediates, coalescing, accelerator substitution."""

import pytest

from repro.click import ast as C
from repro.click.elements import build_element
from repro.click.elements._dsl import (
    assign,
    decl,
    eq,
    fld,
    if_,
    lit,
    pkt,
    scalar_state,
    v,
)
from repro.click.frontend import lower_element
from repro.nic.compiler import N_GPRS, compile_module
from repro.nic.isa import MEMORY_OPCODES
from repro.nic.port import CoalescePack, PortConfig


def compile_handler(handler, state=(), config=None, structs=()):
    element = C.ElementDef(
        "t", state=list(state), structs=list(structs), handler=list(handler)
    )
    module = lower_element(element)
    return compile_module(module, config)


def opcodes(program, block_prefix=""):
    out = []
    for block in program.handler.blocks:
        if block.name.startswith(block_prefix):
            out.extend(i.opcode for i in block.instructions)
    return out


class TestSelection:
    def test_add_is_single_alu(self):
        prog = compile_handler(
            [decl("a", "u32", lit(1)), decl("b", "u32", v("a") + v("a"))]
        )
        ops = opcodes(prog)
        assert ops.count("alu") == 1

    def test_shift_feeding_add_fuses(self):
        # (a << 2) + b with the shift used once: one alu_shf total.
        prog = compile_handler(
            [
                decl("a", "u32", lit(3)),
                decl("b", "u32", lit(4)),
                decl("c", "u32", (v("a") << 2) + v("b")),
            ]
        )
        ops = opcodes(prog)
        assert ops.count("alu_shf") == 1
        assert ops.count("alu") == 0

    def test_reused_shift_does_not_fuse(self):
        prog = compile_handler(
            [
                decl("a", "u32", lit(3)),
                decl("s", "u32", v("a") << 2),
                decl("c", "u32", v("s") + v("s")),
            ]
        )
        ops = opcodes(prog)
        # Standalone alu_shf for the shift plus an alu for the add.
        assert ops.count("alu_shf") == 1
        assert ops.count("alu") == 1

    def test_cmp_branch_fusion(self):
        prog = compile_handler(
            [
                decl("a", "u32", lit(3)),
                if_(eq(v("a"), 5), [decl("b", "u32", lit(1))]),
            ]
        )
        ops = opcodes(prog)
        assert "br_cond" in ops
        # No standalone flag materialization for the fused compare.
        entry_ops = opcodes(prog, "entry")
        assert entry_ops.count("alu") == 0

    def test_mul_by_power_of_two_is_shift(self):
        prog = compile_handler(
            [decl("a", "u32", lit(3)), decl("b", "u32", v("a") * 8)]
        )
        assert "mul_step" not in opcodes(prog)

    def test_general_mul_is_five_steps(self):
        prog = compile_handler(
            [
                decl("a", "u32", lit(3)),
                decl("b", "u32", lit(5)),
                decl("c", "u32", v("a") * v("b")),
            ]
        )
        assert opcodes(prog).count("mul_step") == 5

    def test_u64_mul_doubles_steps(self):
        prog = compile_handler(
            [
                decl("a", "u64", lit(3)),
                decl("b", "u64", lit(5)),
                decl("c", "u64", v("a") * v("b")),
            ]
        )
        assert opcodes(prog).count("mul_step") == 10

    def test_division_by_power_of_two_cheap(self):
        prog = compile_handler(
            [decl("a", "u32", lit(100)), decl("b", "u32", v("a") // 8)]
        )
        ops = opcodes(prog)
        assert ops.count("alu_shf") == 1

    def test_division_by_variable_expands_soft_divide(self):
        prog = compile_handler(
            [
                decl("a", "u32", lit(100)),
                decl("b", "u32", lit(7)),
                decl("c", "u32", v("a") // v("b")),
            ]
        )
        assert len(opcodes(prog)) > 20

    def test_u64_add_uses_register_pair(self):
        prog = compile_handler(
            [
                decl("a", "u64", lit(1)),
                decl("b", "u64", v("a") + v("a")),
            ]
        )
        assert opcodes(prog).count("alu") == 2  # add + addc

    def test_wide_immediates_need_two_instructions(self):
        prog = compile_handler(
            [decl("a", "u32", lit(5) + 0xDEADBEEF)]
        )
        ops = opcodes(prog)
        assert "immed" in ops and "immed_w1" in ops

    def test_small_immediates_are_free(self):
        prog = compile_handler([decl("a", "u32", lit(5) + 7)])
        ops = opcodes(prog)
        assert "immed" not in ops

    def test_constants_materialized_once_per_block(self):
        big = 0x12345678
        prog = compile_handler(
            [
                decl("a", "u32", lit(1) + big),
                decl("b", "u32", lit(2) + big),
            ]
        )
        assert opcodes(prog).count("immed") == 1


class TestRegisterAllocation:
    def test_small_functions_have_zero_stack_traffic(self):
        prog = compile_handler(
            [decl("a", "u32", lit(1)), decl("b", "u32", v("a") + 1)]
        )
        ops = opcodes(prog)
        assert not any(op.startswith("lmem") for op in ops)

    def test_many_locals_spill_to_lmem(self):
        handler = [decl(f"x{i}", "u32", lit(i)) for i in range(N_GPRS + 10)]
        handler.append(decl("y", "u32", v(f"x{N_GPRS + 5}") + 1))
        prog = compile_handler(handler)
        ops = opcodes(prog)
        assert any(op.startswith("lmem") for op in ops)


class TestMemorySelection:
    def test_stateful_access_becomes_mem_op_with_symbolic_region(self):
        prog = compile_handler(
            [assign(v("ctr"), v("ctr") + 1)],
            state=[scalar_state("ctr", "u32")],
        )
        mems = [
            i
            for b in prog.handler.blocks
            for i in b.instructions
            if i.is_memory
        ]
        assert len(mems) == 2  # load + store
        assert all(m.region == "state:ctr" for m in mems)

    def test_packet_field_access_is_ld_field(self):
        prog = compile_handler(
            [
                decl("ip", "ip_hdr*", pkt("ip_header")),
                decl("a", "u32", fld(v("ip"), "src_addr")),
            ]
        )
        ops = opcodes(prog)
        assert "ld_field" in ops
        assert "mem_read" not in ops

    def test_coalesced_pack_fetches_once_per_block(self):
        state = [scalar_state("a", "u32"), scalar_state("b", "u32")]
        handler = [
            decl("x", "u32", v("a") + v("b")),
            assign(v("a"), v("x")),
            assign(v("b"), v("x") + 1),
        ]
        naive = compile_handler(handler, state=state)
        packed = compile_handler(
            handler,
            state=state,
            config=PortConfig(packs=[CoalescePack(("a", "b"), 8)]),
        )
        n_mem = sum(b.n_memory for b in naive.handler.blocks)
        p_mem = sum(b.n_memory for b in packed.handler.blocks)
        assert p_mem < n_mem
        # One coalesced read + one coalesced write.
        assert p_mem == 2
        pack_reads = [
            i
            for b in packed.handler.blocks
            for i in b.instructions
            if i.opcode == "mem_read"
        ]
        assert pack_reads[0].size == 8

    def test_checksum_accel_flag(self):
        handler = [
            decl("ip", "ip_hdr*", pkt("ip_header")),
            C.ExprStmt(C.CallExpr("checksum_update_ip", [v("ip")])),
        ]
        soft = compile_handler(handler)
        hard = compile_handler(handler, config=PortConfig(use_checksum_accel=True))
        assert "call" in opcodes(soft)
        assert "csum" in opcodes(hard)
        assert "csum" not in opcodes(soft)


class TestAccelSubstitution:
    def test_crc_blocks_replaced_by_single_crc_op(self):
        element = build_element("cmsketch", rows=2, cols=64)
        module = lower_element(element)
        crc_blocks = frozenset(
            b.name for b in module.handler.blocks
            if b.name.startswith("inl.crc32_hash")
        )
        assert crc_blocks
        naive = compile_module(module, PortConfig())
        accel = compile_module(module, PortConfig(crc_accel_blocks=crc_blocks))
        assert accel.total_instructions() < naive.total_instructions()
        crc_ops = [
            i for b in accel.handler.blocks for i in b.instructions
            if i.opcode == "crc"
        ]
        # One CRC command per contiguous substituted run: the helper is
        # inlined once per sketch row (rows=2).
        assert len(crc_ops) == 2

    def test_lpm_blocks_replaced_by_cam_lookup(self):
        element = build_element("iplookup")
        module = lower_element(element)
        loop_blocks = frozenset(
            b.name for b in module.handler.blocks
            if b.name.startswith("while.")
        )
        accel = compile_module(module, PortConfig(lpm_accel_blocks=loop_blocks))
        ops = opcodes(accel)
        assert ops.count("cam_lookup") == 1

    def test_config_validation(self):
        module = lower_element(build_element("aggcounter"))
        with pytest.raises(ValueError, match="unknown global"):
            compile_module(module, PortConfig(placement={"ghost": "cls"}))
        with pytest.raises(ValueError, match="multiple packs"):
            compile_module(
                module,
                PortConfig(
                    packs=[
                        CoalescePack(("total_pkts", "total_bytes"), 8),
                        CoalescePack(("total_pkts", "threshold"), 8),
                    ]
                ),
            )


class TestGroundTruthShape:
    def test_per_block_structure_preserved(self, lowered_library):
        module = lowered_library["firewall"]
        program = compile_module(module)
        ir_blocks = [b.name for b in module.handler.blocks]
        asm_blocks = [b.name for b in program.handler.blocks]
        assert ir_blocks == asm_blocks

    def test_render_is_textual(self):
        program = compile_module(lower_element(build_element("mininat")))
        text = program.render()
        assert "pkt_handler" in text
        assert "mem_read" in text or "call" in text

    def test_compute_memory_partition(self, lowered_library):
        program = compile_module(lowered_library["aggcounter"])
        for block in program.handler.blocks:
            assert block.n_compute + block.n_memory == block.n_total
            for instr in block.memory_accesses():
                assert instr.opcode in MEMORY_OPCODES


class TestRemainingSelection:
    def test_sext_costs_two_shifts(self):
        from repro.nfir import Function, IRBuilder, Module, VOID, I8, I32

        m = Module("m")
        f = m.add_function(Function("pkt_handler", [], VOID))
        b = IRBuilder(f, f.add_block("entry"))
        x = b.add(b.const(I8, 1), b.const(I8, 2))
        b.cast("sext", x, I32)
        b.ret()
        program = compile_module(m)
        ops = [i.opcode for blk in program.handler.blocks
               for i in blk.instructions]
        assert ops.count("alu_shf") == 2  # shl + asr pair

    def test_select_compiles(self):
        from repro.nfir import Function, IRBuilder, Module, VOID, I32

        m = Module("m")
        f = m.add_function(Function("pkt_handler", [], VOID))
        b = IRBuilder(f, f.add_block("entry"))
        c = b.icmp("ult", b.const(I32, 1), b.const(I32, 2))
        b.select(c, b.const(I32, 5), b.const(I32, 6))
        b.ret()
        program = compile_module(m)
        ops = [i.opcode for blk in program.handler.blocks
               for i in blk.instructions]
        assert "br_cond" in ops

    def test_phi_costs_a_move(self):
        from repro.nfir import Function, IRBuilder, Module, VOID, I32
        from repro.nfir.values import Constant

        m = Module("m")
        f = m.add_function(Function("pkt_handler", [], VOID))
        entry = f.add_block("entry")
        merge = f.add_block("merge")
        b = IRBuilder(f, entry)
        b.br(merge)
        b.position_at_end(merge)
        phi = b.phi(I32)
        phi.add_incoming(Constant(I32, 1), entry)
        b.ret()
        program = compile_module(m)
        merge_asm = program.handler.block("merge")
        assert merge_asm.n_total >= 2  # move + ret


class TestCryptoAccel:
    def test_crypto_blocks_replaced(self):
        from repro.core.algorithms import _md5_round_element

        module = lower_element(_md5_round_element("md5x", 16))
        loop_blocks = frozenset(
            b.name for b in module.handler.blocks
            if b.name.startswith("for.")
        )
        assert loop_blocks
        naive = compile_module(module, PortConfig())
        accel = compile_module(
            module, PortConfig(crypto_accel_blocks=loop_blocks)
        )
        ops = [i.opcode for blk in accel.handler.blocks
               for i in blk.instructions]
        assert ops.count("crypto") == 1
        assert accel.total_instructions() < naive.total_instructions()

    def test_crypto_engine_charged_once_per_entry(self):
        from repro.core.algorithms import _md5_round_element
        from repro.nic.machine import NICModel, WorkloadCharacter

        module = lower_element(_md5_round_element("md5y", 16))
        loop_blocks = frozenset(
            b.name for b in module.handler.blocks
            if b.name.startswith("for.")
        )
        program = compile_module(
            module, PortConfig(crypto_accel_blocks=loop_blocks)
        )
        # Host-style frequencies: loop blocks ran 16x per packet.
        freq = {b.name: (16.0 if b.name in loop_blocks else 1.0)
                for b in module.handler.blocks}
        model = NICModel()
        demand = model.packet_demand(program, freq, WorkloadCharacter())
        # One engine invocation per packet, not 16.
        assert demand.accel_cycles < 2 * (90.0 + 0.5 * 256)
