"""CLI smoke tests (direct invocation, no subprocess)."""

import json

import pytest

from repro.cli import build_parser, main
from repro.serve.schemas import WIRE_SCHEMA
from repro.errors import (
    ArtifactCacheMiss,
    ArtifactError,
    InvalidWorkloadError,
    LINT_EXIT_ERROR,
    LINT_EXIT_WARNING,
    UnknownElementError,
)


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_analyze_args(self):
        args = build_parser().parse_args(
            ["analyze", "udpcount", "--flows", "5000", "--udp"]
        )
        assert args.command == "analyze"
        assert args.element == "udpcount"
        assert args.flows == 5000
        assert args.udp
        assert args.load is None
        assert args.cache == "auto"
        assert args.workers == 1

    def test_train_args(self):
        args = build_parser().parse_args(
            ["train", "--quick", "--workers", "4", "--save", "clara.pkl"]
        )
        assert args.command == "train"
        assert args.quick
        assert args.workers == 4
        assert args.save == "clara.pkl"
        assert args.cache == "auto"

    def test_sweep_load_flag(self):
        args = build_parser().parse_args(
            ["sweep", "aggcounter", "--load", "clara.pkl"]
        )
        assert args.load == "clara.pkl"

    def test_bad_cache_mode_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["train", "--cache", "sometimes"])

    def test_obs_flags_on_every_command(self):
        for command in ("inventory", "train", "explain"):
            args = build_parser().parse_args(
                [command, "--profile", "--json-report", "rr.json", "-vv"]
            )
            assert args.profile
            assert args.json_report == "rr.json"
            assert args.verbose == 2
            assert not args.quiet

    def test_json_flags(self):
        assert build_parser().parse_args(["analyze", "udpcount", "--json"]).json
        assert build_parser().parse_args(["sweep", "udpcount", "--json"]).json


class TestCommands:
    def test_inventory(self, capsys):
        assert main(["inventory"]) == 0
        out = capsys.readouterr().out
        assert "mazunat" in out
        assert "ratelimiter" in out

    def test_render(self, capsys):
        assert main(["render", "mininat"]) == 0
        out = capsys.readouterr().out
        assert "class mininat : public Element" in out
        assert "simple_action" in out

    def test_sweep(self, capsys):
        assert main(["sweep", "aggcounter", "--packets", "60"]) == 0
        out = capsys.readouterr().out
        assert "knee" in out
        assert "tput(Mpps)" in out

    def test_train_save_then_analyze_load(self, clara_artifacts, capsys,
                                          monkeypatch):
        monkeypatch.setenv("REPRO_CLARA_CACHE",
                           str(clara_artifacts["cache_dir"]))
        assert main(["analyze", "aggcounter", "--packets", "60",
                     "--load", str(clara_artifacts["artifact"])]) == 0
        out = capsys.readouterr().out
        assert "Suggested port configuration" in out


class TestExitCodes:
    """Each ClaraError subclass maps to its own exit status, with a
    one-line ``error:`` message instead of a traceback."""

    def test_unknown_element(self, capsys):
        assert main(["render", "not_an_element"]) == \
            UnknownElementError.exit_code
        err = capsys.readouterr().err
        assert err.startswith("error: unknown element")

    def test_invalid_workload(self, capsys):
        # validation happens before any training starts
        assert main(["analyze", "aggcounter", "--flows", "0"]) == \
            InvalidWorkloadError.exit_code
        assert "n_flows" in capsys.readouterr().err

    def test_artifact_error(self, capsys, tmp_path):
        missing = str(tmp_path / "nope.pkl")
        assert main(["analyze", "aggcounter", "--load", missing]) == \
            ArtifactError.exit_code
        assert "no artifact at" in capsys.readouterr().err

    def test_cache_require_miss(self, capsys, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CLARA_CACHE", str(tmp_path / "empty"))
        assert main(["train", "--quick", "--cache", "require"]) == \
            ArtifactCacheMiss.exit_code
        assert "no cached Clara artifact" in capsys.readouterr().err


class TestJsonOutputs:
    def test_analyze_json_schema(self, clara_artifacts, capsys):
        assert main(["analyze", "aggcounter", "--packets", "60", "--json",
                     "--load", str(clara_artifacts["artifact"])]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["schema"] == WIRE_SCHEMA
        assert payload["kind"] == "analysis_result"
        assert payload["error"] is None
        result = payload["result"]
        report = result["report"]
        assert report["schema"] == 2
        assert report["nf_name"] == "aggcounter"
        # schema 2 carries the offload-lint diagnostics
        assert isinstance(report["diagnostics"], list)
        assert all(d["rule"].startswith("CL") for d in report["diagnostics"])
        types = {entry["type"] for entry in report["insights"]}
        assert {"compute", "memory", "scaleout", "placement"} <= types
        assert result["port_config"]["cores"] >= 1
        assert result["profile"]["packets"] == 60

    def test_sweep_json_schema(self, capsys):
        assert main(["sweep", "aggcounter", "--packets", "60",
                     "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["schema"] == WIRE_SCHEMA
        assert payload["kind"] == "core_sweep"
        result = payload["result"]
        assert result["knee"] in [p["cores"] for p in result["points"]]
        assert all(p["throughput_mpps"] > 0 for p in result["points"])

    def test_insight_report_json_roundtrip(self, clara_artifacts):
        from repro.core import Clara, InsightReport
        from repro.workload.spec import WorkloadSpec

        clara = Clara.load(clara_artifacts["artifact"])
        analysis = clara.analyze(
            "udpcount", WorkloadSpec(name="t", n_flows=64, n_packets=60)
        )
        restored = InsightReport.from_json(analysis.report.to_json())
        assert restored.to_dict() == analysis.report.to_dict()


class TestLintCommand:
    """``clara lint``: human/JSON/SARIF output and the 0/8/9 exit
    protocol (clean / warnings / error-severity findings)."""

    def test_warnings_exit_code(self, capsys):
        # aggcounter's counter updates are CL007 race candidates.
        assert main(["lint", "aggcounter"]) == LINT_EXIT_WARNING
        out = capsys.readouterr().out
        assert "warning[CL007]" in out
        assert "lint: module aggcounter" in out

    def test_clean_element_exits_zero(self, capsys):
        assert main(["lint", "mininat"]) == 0
        assert "0 error(s), 0 warning(s)" in capsys.readouterr().out

    def test_whole_corpus_has_no_errors(self, capsys):
        code = main(["lint"])
        assert code in (0, LINT_EXIT_WARNING)
        assert code != LINT_EXIT_ERROR
        capsys.readouterr()

    def test_unknown_target_exits_typed(self, capsys):
        from repro.errors import UnknownTargetError

        assert main(["lint", "--target", "no-such-nic"]) == \
            UnknownTargetError.exit_code
        assert "no-such-nic" in capsys.readouterr().err

    def test_dpu_target_changes_capacity_verdicts(self, capsys):
        # loadbalancer's 88KB conn_table fits the NFP's 4MB IMEM but
        # no SRAM region on the scratch-starved DPU (CL008 warning).
        assert main(["lint", "loadbalancer", "--only", "CL008"]) == 0
        capsys.readouterr()
        assert main(["lint", "loadbalancer", "--only", "CL008",
                     "--target", "dpu-offpath"]) == LINT_EXIT_WARNING
        assert "CL008" in capsys.readouterr().out

    def test_json_output(self, capsys):
        code = main(["lint", "aggcounter", "--json"])
        assert code == LINT_EXIT_WARNING
        payload = json.loads(capsys.readouterr().out)
        assert payload["schema"] == WIRE_SCHEMA
        assert payload["kind"] == "lint_run"
        (report,) = payload["result"]["reports"]
        assert report["module"] == "aggcounter"
        assert report["counts"]["error"] == 0
        assert report["counts"]["warning"] > 0

    def test_sarif_output(self, capsys):
        assert main(["lint", "aggcounter", "--sarif"]) == LINT_EXIT_WARNING
        payload = json.loads(capsys.readouterr().out)
        assert payload["version"] == "2.1.0"
        run = payload["runs"][0]
        assert run["tool"]["driver"]["name"] == "clara-lint"
        assert any(r["ruleId"] == "CL007" for r in run["results"])

    def test_rule_selection(self, capsys):
        # Disabling the only firing rule turns warnings into clean.
        assert main(["lint", "aggcounter", "--disable", "CL007"]) == 0
        capsys.readouterr()
        assert main(["lint", "aggcounter", "--only",
                     "race-candidate"]) == LINT_EXIT_WARNING
        capsys.readouterr()

    def test_unknown_rule_is_clara_error(self, capsys):
        from repro.errors import ClaraError

        assert main(["lint", "--only", "CL999"]) == ClaraError.exit_code
        assert "no lint rule" in capsys.readouterr().err

    def test_list_rules(self, capsys):
        assert main(["lint", "--list-rules"]) == 0
        out = capsys.readouterr().out
        for code in ("CL001", "CL008"):
            assert code in out


class TestObservabilityFlags:
    def test_analyze_profile_prints_stage_table(self, clara_artifacts,
                                                capsys, monkeypatch):
        monkeypatch.setenv("REPRO_CLARA_CACHE",
                           str(clara_artifacts["cache_dir"]))
        assert main(["analyze", "aggcounter", "--packets", "60",
                     "--profile"]) == 0
        out = capsys.readouterr().out
        assert "Run profile: analyze" in out
        for stage in ("prepare", "profile_on_host", "predict",
                      "placement", "coalescing", "artifact_cache.load"):
            assert stage in out

    def test_analyze_json_report_file(self, clara_artifacts, tmp_path,
                                      capsys, monkeypatch):
        monkeypatch.setenv("REPRO_CLARA_CACHE",
                           str(clara_artifacts["cache_dir"]))
        path = tmp_path / "rr.json"
        assert main(["analyze", "aggcounter", "--packets", "60",
                     "--json-report", str(path)]) == 0
        capsys.readouterr()
        from repro.obs import RunReport

        report = RunReport.from_json(path.read_text())
        assert report.command == "analyze"
        assert report.status == "ok"
        assert report.attributes["exit_code"] == 0
        # artifact-cache activity and every advisor stage are visible
        assert "artifact_cache.load" in report.stages
        for stage in ("prepare", "profile_on_host", "predict", "identify",
                      "scaleout", "placement", "coalescing"):
            assert stage in report.stages, stage
        cache_hits = [
            name for name in report.metrics
            if name.startswith("artifact_cache_requests")
        ]
        assert cache_hits

    def test_failed_run_report_records_status(self, tmp_path, capsys):
        path = tmp_path / "rr.json"
        code = main(["render", "not_an_element", "--json-report", str(path)])
        assert code == UnknownElementError.exit_code
        capsys.readouterr()
        from repro.obs import RunReport

        report = RunReport.from_json(path.read_text())
        assert report.status == "UnknownElementError"
        assert report.attributes["exit_code"] == UnknownElementError.exit_code


class TestTelemetryFlags:
    """``--trace-out`` / ``--metrics`` are available on every
    subcommand (exercised here on the cheap ``lint``)."""

    def test_flags_parse_on_every_command(self):
        for command in ("inventory", "train", "analyze", "lint", "bench"):
            argv = [command, "--trace-out", "t.json", "--metrics", "m.prom"]
            if command == "analyze":
                argv.insert(1, "aggcounter")
            args = build_parser().parse_args(argv)
            assert args.trace_out == "t.json"
            assert args.metrics == "m.prom"

    def test_lint_trace_out_is_chrome_trace(self, tmp_path, capsys):
        path = tmp_path / "trace.json"
        code = main(["lint", "mininat", "--trace-out", str(path)])
        assert code == 0
        capsys.readouterr()
        payload = json.loads(path.read_text(encoding="utf-8"))
        events = payload["traceEvents"]
        assert events, "lint run produced no spans"
        assert {e["ph"] for e in events} == {"B", "E"}
        names = {e["name"] for e in events}
        assert "cli.lint" in names
        assert "lint_corpus" in names

    def test_lint_metrics_file_is_prometheus_text(self, tmp_path, capsys):
        path = tmp_path / "metrics.prom"
        code = main(["lint", "mininat", "--metrics", str(path)])
        assert code == 0
        capsys.readouterr()
        text = path.read_text(encoding="utf-8")
        assert "# TYPE" in text
        assert 'cli_invocations{command="lint"}' in text


class TestTracePersistence:
    def test_roundtrip(self, tmp_path):
        from repro.workload import generate_trace
        from repro.workload.spec import WorkloadSpec
        from repro.workload.trace import load_trace, save_trace

        spec = WorkloadSpec(name="t", n_flows=10, n_packets=25,
                            udp_fraction=0.4)
        original = generate_trace(spec, seed=3)
        path = tmp_path / "trace.jsonl"
        save_trace(original, str(path))
        loaded = load_trace(str(path))
        assert len(loaded) == len(original)
        for a, b in zip(original, loaded):
            assert a.flow_key() == b.flow_key()
            assert a.payload == b.payload
            assert a.timestamp_ns == b.timestamp_ns
            assert (a.udp is None) == (b.udp is None)

    def test_loaded_trace_drives_interpreter(self, tmp_path):
        from repro.click.elements import build_element
        from repro.click.frontend import lower_element
        from repro.click.interp import Interpreter
        from repro.workload import generate_trace
        from repro.workload.spec import WorkloadSpec
        from repro.workload.trace import load_trace, save_trace

        spec = WorkloadSpec(name="t", n_flows=10, n_packets=30)
        path = tmp_path / "trace.jsonl"
        save_trace(generate_trace(spec, seed=0), str(path))
        interp = Interpreter(lower_element(build_element("aggcounter")))
        profile = interp.run_trace(load_trace(str(path)))
        assert profile.packets == 30
