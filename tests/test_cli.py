"""CLI smoke tests (direct invocation, no subprocess)."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_analyze_args(self):
        args = build_parser().parse_args(
            ["analyze", "udpcount", "--flows", "5000", "--udp"]
        )
        assert args.command == "analyze"
        assert args.element == "udpcount"
        assert args.flows == 5000
        assert args.udp
        assert args.load is None
        assert args.cache == "auto"
        assert args.workers == 1

    def test_train_args(self):
        args = build_parser().parse_args(
            ["train", "--quick", "--workers", "4", "--save", "clara.pkl"]
        )
        assert args.command == "train"
        assert args.quick
        assert args.workers == 4
        assert args.save == "clara.pkl"
        assert args.cache == "auto"

    def test_sweep_load_flag(self):
        args = build_parser().parse_args(
            ["sweep", "aggcounter", "--load", "clara.pkl"]
        )
        assert args.load == "clara.pkl"

    def test_bad_cache_mode_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["train", "--cache", "sometimes"])


class TestCommands:
    def test_inventory(self, capsys):
        assert main(["inventory"]) == 0
        out = capsys.readouterr().out
        assert "mazunat" in out
        assert "ratelimiter" in out

    def test_render(self, capsys):
        assert main(["render", "mininat"]) == 0
        out = capsys.readouterr().out
        assert "class mininat : public Element" in out
        assert "simple_action" in out

    def test_sweep(self, capsys):
        assert main(["sweep", "aggcounter", "--packets", "60"]) == 0
        out = capsys.readouterr().out
        assert "knee" in out
        assert "tput(Mpps)" in out

    def test_unknown_element_raises(self):
        with pytest.raises(KeyError):
            main(["render", "not_an_element"])

    def test_train_save_then_analyze_load(self, tmp_path, capsys, monkeypatch):
        monkeypatch.setenv("REPRO_CLARA_CACHE", str(tmp_path / "cache"))
        artifact = tmp_path / "clara.pkl"
        assert main(["train", "--quick", "--save", str(artifact)]) == 0
        assert artifact.exists()
        assert main(["analyze", "aggcounter", "--packets", "60",
                     "--load", str(artifact)]) == 0
        out = capsys.readouterr().out
        assert "Suggested port configuration" in out


class TestTracePersistence:
    def test_roundtrip(self, tmp_path):
        from repro.workload import generate_trace
        from repro.workload.spec import WorkloadSpec
        from repro.workload.trace import load_trace, save_trace

        spec = WorkloadSpec(name="t", n_flows=10, n_packets=25,
                            udp_fraction=0.4)
        original = generate_trace(spec, seed=3)
        path = tmp_path / "trace.jsonl"
        save_trace(original, str(path))
        loaded = load_trace(str(path))
        assert len(loaded) == len(original)
        for a, b in zip(original, loaded):
            assert a.flow_key() == b.flow_key()
            assert a.payload == b.payload
            assert a.timestamp_ns == b.timestamp_ns
            assert (a.udp is None) == (b.udp is None)

    def test_loaded_trace_drives_interpreter(self, tmp_path):
        from repro.click.elements import build_element
        from repro.click.frontend import lower_element
        from repro.click.interp import Interpreter
        from repro.workload import generate_trace
        from repro.workload.spec import WorkloadSpec
        from repro.workload.trace import load_trace, save_trace

        spec = WorkloadSpec(name="t", n_flows=10, n_packets=30)
        path = tmp_path / "trace.jsonl"
        save_trace(generate_trace(spec, seed=0), str(path))
        interp = Interpreter(lower_element(build_element("aggcounter")))
        profile = interp.run_trace(load_trace(str(path)))
        assert profile.packets == 30
