"""Interval-domain tests: the lattice operations, transfer-function
soundness against the concrete evaluators, fixpoint termination on
hostile CFGs (irreducible, back-edge-into-entry), and loop trip-count
proofs — including a brute-force concrete-execution oracle."""

import pytest

from repro.nfir import (
    Br,
    CondBr,
    Constant,
    Function,
    I8,
    I32,
    IRBuilder,
    Load,
    Phi,
    Ret,
    Store,
)
from repro.nfir.analysis.absint import (
    Interval,
    IntervalAnalysis,
    interval_binary,
    interval_icmp,
    loop_trip_bounds,
)
from repro.nfir.instructions import (
    Alloca,
    BinaryOp,
    Cast,
    ICmp,
    Select,
    evaluate_binary,
    evaluate_icmp,
)


class TestInterval:
    def test_construction_and_props(self):
        iv = Interval(2, 9)
        assert iv.width == 8
        assert iv.contains(2) and iv.contains(9) and not iv.contains(10)
        assert Interval.const(7).is_constant
        assert Interval.top(I8) == Interval(0, 255)
        assert Interval(0, 300).is_top(I8)
        assert not Interval(1, 255).is_top(I8)

    def test_invalid_rejected(self):
        with pytest.raises(ValueError):
            Interval(5, 4)
        with pytest.raises(ValueError):
            Interval(-1, 4)

    def test_join_meet(self):
        assert Interval(0, 4).join(Interval(8, 12)) == Interval(0, 12)
        assert Interval(0, 10).meet(Interval(5, 20)) == Interval(5, 10)
        assert Interval(0, 3).meet(Interval(4, 9)) is None

    def test_widen_jumps_to_type_bounds(self):
        prev, newer = Interval(0, 4), Interval(0, 5)
        assert prev.widen(newer, 255) == Interval(0, 255)
        # A stable endpoint stays put.
        assert Interval(3, 10).widen(Interval(3, 12), 255) == Interval(3, 255)
        assert Interval(3, 10).widen(Interval(1, 10), 255) == Interval(0, 10)
        assert Interval(3, 10).widen(Interval(3, 10), 255) == Interval(3, 10)

    def test_signed_nonnegative(self):
        assert Interval(0, 127).signed_nonnegative(I8)
        assert not Interval(0, 128).signed_nonnegative(I8)


#: sample endpoints exercising zero, small values, the sign boundary,
#: and the type maximum.
_POINTS = (0, 1, 3, 7, 127, 128, 200, 255)
_INTERVALS = [
    Interval(lo, hi) for lo in _POINTS for hi in _POINTS if lo <= hi
]
_BINOPS = (
    "add", "sub", "mul", "udiv", "urem", "and", "or", "xor",
    "shl", "lshr", "ashr", "sdiv", "srem",
)
_PREDICATES = (
    "eq", "ne", "ult", "ule", "ugt", "uge", "slt", "sle", "sgt", "sge",
)


def _members(iv):
    return {iv.lo, iv.hi, (iv.lo + iv.hi) // 2}


class TestTransferOracle:
    """The abstract transfers must contain every concrete outcome the
    IR evaluators produce (sampled at interval endpoints and
    midpoints)."""

    @pytest.mark.parametrize("opcode", _BINOPS)
    def test_binary_soundness(self, opcode):
        for a in _INTERVALS:
            for b in _INTERVALS:
                out = interval_binary(opcode, I8, a, b)
                for x in _members(a):
                    for y in _members(b):
                        got = evaluate_binary(opcode, I8, x, y)
                        assert out.contains(got), (
                            f"{opcode}({x}, {y}) = {got} outside "
                            f"{out} for {a} op {b}"
                        )

    @pytest.mark.parametrize("predicate", _PREDICATES)
    def test_icmp_decisions_sound(self, predicate):
        for a in _INTERVALS:
            for b in _INTERVALS:
                decided = interval_icmp(predicate, I8, a, b)
                if decided is None:
                    continue
                for x in _members(a):
                    for y in _members(b):
                        assert evaluate_icmp(predicate, I8, x, y) == decided

    def test_icmp_decides_disjoint_ranges(self):
        assert interval_icmp("ult", I8, Interval(0, 3), Interval(4, 9)) == 1
        assert interval_icmp("ult", I8, Interval(9, 20), Interval(1, 9)) == 0
        assert interval_icmp("eq", I8, Interval(5, 5), Interval(5, 5)) == 1
        assert interval_icmp("eq", I8, Interval(0, 4), Interval(2, 9)) is None


# ---------------------------------------------------------------------------
# Whole-function fixtures.
# ---------------------------------------------------------------------------


def _clamp_sum():
    """``for (i = 0; i < min(n, 16); i++) acc += i`` with the clamp
    written as a branch — the pattern branch refinement must catch."""
    f = Function("pkt_handler", args=[("n", I8)])
    (n_arg,) = f.args
    entry = f.add_block("entry")
    clamp = f.add_block("clamp")
    header = f.add_block("header")
    body = f.add_block("body")
    exit_ = f.add_block("exit")
    b = IRBuilder(f, entry)
    n_slot = b.alloca(I8, name="n_slot")
    i_slot = b.alloca(I8, name="i_slot")
    acc = b.alloca(I32, name="acc")
    b.store(n_arg, n_slot)
    b.store(b.const(I8, 0), i_slot)
    b.store(b.const(I32, 0), acc)
    n0 = b.load(n_slot)
    b.cond_br(b.icmp("ugt", n0, b.const(I8, 16)), clamp, header)
    b.position_at_end(clamp)
    b.store(b.const(I8, 16), n_slot)
    b.br(header)
    b.position_at_end(header)
    i = b.load(i_slot)
    n = b.load(n_slot)
    b.cond_br(b.icmp("ult", i, n), body, exit_)
    b.position_at_end(body)
    wide = b.zext(b.load(i_slot), I32)
    b.store(b.add(b.load(acc), wide), acc)
    b.store(b.add(b.load(i_slot), b.const(I8, 1)), i_slot)
    b.br(header)
    b.position_at_end(exit_)
    b.ret()
    return f


def _run_concrete(function, arg_values, fuel=10_000):
    """A minimal concrete NFIR interpreter: executes until Ret or the
    fuel runs out, recording every integer value each instruction
    produced, grouped by instruction id."""
    values = {id(a): v for a, v in zip(function.args, arg_values)}
    slots = {}
    observed = {}

    def read(v):
        if isinstance(v, Constant):
            return v.type.wrap(v.value)
        return values[id(v)]

    block, prev = function.blocks[0], None
    for _ in range(fuel):
        for instr in block.instructions:
            if isinstance(instr, Alloca):
                slots.setdefault(id(instr), 0)
                continue
            if isinstance(instr, Store):
                slots[id(instr.ptr)] = read(instr.value)
                continue
            if isinstance(instr, Load):
                result = slots[id(instr.ptr)]
            elif isinstance(instr, BinaryOp):
                result = evaluate_binary(
                    instr.opcode, instr.type,
                    read(instr.lhs), read(instr.rhs),
                )
            elif isinstance(instr, ICmp):
                result = evaluate_icmp(
                    instr.predicate, instr.lhs.type,
                    read(instr.lhs), read(instr.rhs),
                )
            elif isinstance(instr, Cast):
                raw = read(instr.value)
                if instr.opcode == "sext":
                    raw = instr.value.type.to_signed(raw)
                result = instr.type.wrap(raw)
            elif isinstance(instr, Select):
                result = read(instr.if_true if read(instr.cond)
                              else instr.if_false)
            elif isinstance(instr, Phi):
                result = read(next(
                    v for v, p in instr.incomings if p is prev
                ))
            elif isinstance(instr, Br):
                prev, block = block, instr.target
                break
            elif isinstance(instr, CondBr):
                taken = instr.if_true if read(instr.cond) else instr.if_false
                prev, block = block, taken
                break
            elif isinstance(instr, Ret):
                return observed, slots
            else:  # pragma: no cover - fixture uses no other opcodes
                raise AssertionError(f"unhandled {instr.opcode}")
            values[id(instr)] = result
            observed.setdefault(id(instr), set()).add(result)
        else:  # pragma: no cover - blocks always end in a terminator
            raise AssertionError("fell off a block")
    raise AssertionError("fuel exhausted: likely non-terminating")


class TestIntervalAnalysisConcrete:
    def test_branch_refinement_bounds_loop_body(self):
        f = _clamp_sum()
        analysis = IntervalAnalysis(f)
        by_name = {b.name: b for b in f.blocks}
        # Inside the body, the loop test i < n (n <= 16) has fired.
        env = analysis.env_in("body")
        header_i = next(
            i for i in by_name["header"].instructions if isinstance(i, Load)
        )
        iv = analysis.interval_of(header_i, env)
        assert iv.hi <= 15

    def test_exhaustive_oracle_over_all_inputs(self):
        """Every concrete run (all 256 inputs) must stay inside the
        abstract intervals at every program point."""
        f = _clamp_sum()
        analysis = IntervalAnalysis(f)
        point_ivs = {}
        for block in f.blocks:
            for instr, iv in analysis.eval_block(block).items():
                point_ivs[id(instr)] = iv
        for n in range(256):
            observed, _ = _run_concrete(f, [n])
            for key, seen in observed.items():
                iv = point_ivs.get(key)
                if iv is None:
                    continue  # value was unconstrained (top)
                for concrete in seen:
                    assert iv.contains(concrete)

    def test_trip_bound_proved_through_clamp(self):
        f = _clamp_sum()
        bounds = loop_trip_bounds(f)
        assert "header" in bounds
        bound = bounds["header"]
        assert bound.trip_max == 16
        assert "steps by 1" in bound.reason
        # The proof is tight: input 255 really iterates 16 times.
        _, slots = _run_concrete(f, [255])
        i_slot = next(
            i for i in f.blocks[0].instructions
            if isinstance(i, Alloca) and i.name == "i_slot"
        )
        assert slots[id(i_slot)] == 16


class TestHostileCfgs:
    def test_irreducible_cycle_terminates(self):
        """A cycle entered at two points has no natural-loop header;
        only widening makes the fixpoint terminate."""
        f = Function("pkt_handler", args=[("sel", I8)])
        (sel,) = f.args
        entry = f.add_block("entry")
        a = f.add_block("a")
        c = f.add_block("c")
        exit_ = f.add_block("exit")
        b = IRBuilder(f, entry)
        slot = b.alloca(I32)
        b.store(b.const(I32, 0), slot)
        b.cond_br(b.icmp("ugt", sel, b.const(I8, 8)), a, c)
        b.position_at_end(a)
        b.store(b.add(b.load(slot), b.const(I32, 1)), slot)
        b.br(c)
        b.position_at_end(c)
        b.store(b.add(b.load(slot), b.const(I32, 1)), slot)
        x = b.load(slot)
        b.cond_br(b.icmp("ult", x, b.const(I32, 100)), a, exit_)
        b.position_at_end(exit_)
        b.ret()
        from repro.nfir.cfg import natural_loops

        assert natural_loops(f) == {}  # genuinely irreducible
        analysis = IntervalAnalysis(f)  # must not diverge
        iv = analysis.interval_of(x, analysis.env_out("c"))
        assert iv is not None and iv.contains(2)

    def test_back_edge_into_entry_terminates(self):
        f = Function("pkt_handler")
        entry = f.add_block("entry")
        exit_ = f.add_block("exit")
        b = IRBuilder(f, entry)
        slot = b.alloca(I32)
        y = b.add(b.load(slot), b.const(I32, 1))
        b.store(y, slot)
        b.cond_br(b.icmp("ult", y, b.const(I32, 10)), entry, exit_)
        IRBuilder(f, exit_).ret()
        analysis = IntervalAnalysis(f)  # must not diverge
        env = analysis.env_out("entry")
        iv = analysis.interval_of(y, env)
        assert iv is not None
        # No entering edge initializes the slot, so no bound is proved
        # — but the query must not crash either.
        assert loop_trip_bounds(f, analysis) == {}


class TestLoopTripBounds:
    def _counted(self, limit, step=1, predicate="ult"):
        f = Function("pkt_handler")
        entry = f.add_block("entry")
        header = f.add_block("header")
        body = f.add_block("body")
        exit_ = f.add_block("exit")
        b = IRBuilder(f, entry)
        slot = b.alloca(I32)
        b.store(b.const(I32, 0), slot)
        b.br(header)
        b.position_at_end(header)
        i = b.load(slot)
        b.cond_br(b.icmp(predicate, i, b.const(I32, limit)), body, exit_)
        b.position_at_end(body)
        b.store(b.add(b.load(slot), b.const(I32, step)), slot)
        b.br(header)
        b.position_at_end(exit_)
        b.ret()
        return f

    def test_simple_counted_loop(self):
        bounds = loop_trip_bounds(self._counted(32))
        assert bounds["header"].trip_max == 32

    def test_non_unit_step_takes_ceiling(self):
        bounds = loop_trip_bounds(self._counted(10, step=3))
        assert bounds["header"].trip_max == 4  # ceil(10 / 3)

    def test_ule_counts_one_extra(self):
        bounds = loop_trip_bounds(self._counted(10, predicate="ule"))
        assert bounds["header"].trip_max == 11

    def test_phi_counter(self):
        f = Function("pkt_handler")
        entry = f.add_block("entry")
        header = f.add_block("header")
        body = f.add_block("body")
        exit_ = f.add_block("exit")
        b = IRBuilder(f, entry)
        b.br(header)
        b.position_at_end(header)
        phi = b.phi(I32)
        b.cond_br(b.icmp("ult", phi, b.const(I32, 8)), body, exit_)
        b.position_at_end(body)
        step = b.add(phi, b.const(I32, 1))
        b.br(header)
        b.position_at_end(exit_)
        b.ret()
        phi.add_incoming(b.const(I32, 0), entry)
        phi.add_incoming(step, body)
        bounds = loop_trip_bounds(f)
        assert bounds["header"].trip_max == 8

    def test_downward_loop(self):
        f = Function("pkt_handler")
        entry = f.add_block("entry")
        header = f.add_block("header")
        body = f.add_block("body")
        exit_ = f.add_block("exit")
        b = IRBuilder(f, entry)
        slot = b.alloca(I32)
        b.store(b.const(I32, 20), slot)
        b.br(header)
        b.position_at_end(header)
        i = b.load(slot)
        b.cond_br(b.icmp("ugt", i, b.const(I32, 4)), body, exit_)
        b.position_at_end(body)
        b.store(b.binop("sub", b.load(slot), b.const(I32, 2)), slot)
        b.br(header)
        b.position_at_end(exit_)
        b.ret()
        bounds = loop_trip_bounds(f)
        assert bounds["header"].trip_max == 8  # ceil((20 - 5 + 1) / 2)

    def test_multiplicative_step_is_unbounded(self):
        f = Function("pkt_handler")
        entry = f.add_block("entry")
        header = f.add_block("header")
        body = f.add_block("body")
        exit_ = f.add_block("exit")
        b = IRBuilder(f, entry)
        slot = b.alloca(I32)
        b.store(b.const(I32, 1), slot)
        b.br(header)
        b.position_at_end(header)
        i = b.load(slot)
        b.cond_br(b.icmp("ne", i, b.const(I32, 0)), body, exit_)
        b.position_at_end(body)
        b.store(b.mul(b.load(slot), b.const(I32, 2)), slot)
        b.br(header)
        b.position_at_end(exit_)
        b.ret()
        assert loop_trip_bounds(f) == {}
