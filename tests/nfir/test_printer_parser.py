"""Printer/parser round-trip tests, including a property test over the
whole element library and synthesized programs."""

import pytest

from repro.click.elements import all_elements
from repro.click.frontend import lower_element
from repro.nfir import (
    Function,
    GlobalVariable,
    IRBuilder,
    Module,
    PointerType,
    StructType,
    VOID,
    I8,
    I16,
    I32,
    parse_module,
    print_module,
    verify_module,
)
from repro.nfir.parser import ParseError
from repro.synthesis.generator import ClickGen
from repro.synthesis.stats import extract_stats


def build_sample_module():
    st = StructType("flow", (("int_ip", I32), ("int_port", I16)))
    m = Module("sample")
    g = m.add_global(GlobalVariable("tbl", st, kind="struct"))
    f = m.add_function(Function("pkt_handler", [("pkt", PointerType(I8))], VOID))
    entry = f.add_block("entry")
    then = f.add_block("then")
    done = f.add_block("done")
    b = IRBuilder(f, entry)
    slot = b.alloca(I32)
    p = b.gep(g, ["int_ip"])
    value = b.load(p)
    bumped = b.add(value, b.const(I32, 1))
    b.store(bumped, p)
    cond = b.icmp("ult", bumped, b.const(I32, 100))
    b.cond_br(cond, then, done)
    b.position_at_end(then)
    b.store(b.const(I32, 0), slot)
    b.br(done)
    b.position_at_end(done)
    b.ret()
    return m


class TestRoundTrip:
    def test_sample_module_roundtrips(self):
        m = build_sample_module()
        text = print_module(m)
        m2 = parse_module(text)
        assert print_module(m2) == text
        verify_module(m2)

    def test_globals_preserved(self):
        m = build_sample_module()
        m2 = parse_module(print_module(m))
        assert set(m2.globals) == {"tbl"}
        assert m2.globals["tbl"].kind == "struct"
        assert m2.globals["tbl"].size_bytes == m.globals["tbl"].size_bytes

    def test_block_order_preserved(self):
        m = build_sample_module()
        m2 = parse_module(print_module(m))
        assert [b.name for b in m2.handler.blocks] == ["entry", "then", "done"]

    @pytest.mark.parametrize(
        "name", [el.name for el in all_elements()]
    )
    def test_every_library_element_roundtrips(self, name, lowered_library):
        module = lowered_library[name]
        text = print_module(module)
        reparsed = parse_module(text)
        assert print_module(reparsed) == text
        verify_module(reparsed)

    def test_synthesized_programs_roundtrip(self):
        gen = ClickGen(extract_stats(all_elements()), seed=11)
        for element in gen.elements(8):
            module = lower_element(element)
            text = print_module(module)
            assert print_module(parse_module(text)) == text


class TestParserErrors:
    def test_missing_module_header(self):
        with pytest.raises(ParseError):
            parse_module("global @x : i32 kind=scalar entries=1 size=4")

    def test_unknown_opcode(self):
        text = (
            'module "m"\n'
            "define void @pkt_handler() {\n"
            "entry:\n"
            "  frobnicate i32 %a\n"
            "}\n"
        )
        with pytest.raises(ParseError):
            parse_module(text)

    def test_undefined_value(self):
        text = (
            'module "m"\n'
            "define void @pkt_handler() {\n"
            "entry:\n"
            "  %x = add i32 %missing, 1\n"
            "  ret void\n"
            "}\n"
        )
        with pytest.raises(ParseError, match="undefined"):
            parse_module(text)

    def test_operand_type_mismatch(self):
        text = (
            'module "m"\n'
            "define void @pkt_handler() {\n"
            "entry:\n"
            "  %x = add i32 1, 2\n"
            "  %y = add i16 %x, 1\n"
            "  ret void\n"
            "}\n"
        )
        with pytest.raises(ParseError, match="type"):
            parse_module(text)

    def test_duplicate_value_name(self):
        text = (
            'module "m"\n'
            "define void @pkt_handler() {\n"
            "entry:\n"
            "  %x = add i32 1, 2\n"
            "  %x = add i32 1, 2\n"
            "  ret void\n"
            "}\n"
        )
        with pytest.raises(ParseError, match="redefined"):
            parse_module(text)

    def test_unclosed_function(self):
        text = 'module "m"\ndefine void @f() {\nentry:\n  ret void\n'
        with pytest.raises(ParseError, match="not closed"):
            parse_module(text)

    def test_null_for_non_pointer_rejected(self):
        text = (
            'module "m"\n'
            "define void @pkt_handler() {\n"
            "entry:\n"
            "  %x = add i32 null, 2\n"
            "  ret void\n"
            "}\n"
        )
        with pytest.raises(ParseError):
            parse_module(text)

    def test_comments_and_blank_lines_ignored(self):
        text = (
            'module "m"\n'
            "\n"
            "; a comment\n"
            "define void @pkt_handler() {\n"
            "entry:\n"
            "  ; inner comment\n"
            "  ret void\n"
            "}\n"
        )
        m = parse_module(text)
        assert len(m.handler.blocks) == 1


class TestPhiRoundTrip:
    def test_phi_prints_and_parses(self):
        from repro.nfir.values import Constant

        m = Module("phis")
        f = m.add_function(Function("pkt_handler", [], VOID))
        entry = f.add_block("entry")
        left = f.add_block("left")
        right = f.add_block("right")
        merge = f.add_block("merge")
        b = IRBuilder(f, entry)
        cond = b.icmp("ult", b.const(I32, 1), b.const(I32, 2))
        b.cond_br(cond, left, right)
        b.position_at_end(left)
        x = b.add(b.const(I32, 1), b.const(I32, 2))
        b.br(merge)
        b.position_at_end(right)
        b.br(merge)
        b.position_at_end(merge)
        phi = b.phi(I32)
        phi.add_incoming(x, left)
        phi.add_incoming(Constant(I32, 7), right)
        b.ret()
        text = print_module(m)
        assert "phi i32 [" in text
        m2 = parse_module(text)
        assert print_module(m2) == text
        phi2 = next(
            i for i in m2.handler.instructions() if i.opcode == "phi"
        )
        assert len(phi2.incomings) == 2
        assert {blk.name for _v, blk in phi2.incomings} == {"left", "right"}
