"""Corpus-wide lint gate: every library element must verify and lint
with zero error-severity diagnostics (the repo-level acceptance bar for
the offload linter), and the generator's debug flag applies the same
gate to synthesized programs."""

import pytest

from repro.click.elements import ELEMENT_BUILDERS, build_element
from repro.core.prepare import prepare_element
from repro.nfir import verify_module
from repro.nfir.analysis import lint_module


@pytest.mark.parametrize("name", sorted(ELEMENT_BUILDERS))
def test_element_verifies_and_lints_error_free(name):
    prepared = prepare_element(build_element(name))
    verify_module(prepared.module)
    report = lint_module(prepared.module)
    errors = report.by_severity("error")
    assert not errors, "\n".join(d.render() for d in errors)


def test_corpus_known_hazards_are_surfaced():
    """The linter is not vacuous on the corpus: the stateful counter
    elements carry CL007 race-candidate warnings."""
    prepared = prepare_element(build_element("aggcounter"))
    report = lint_module(prepared.module)
    assert any(d.rule == "CL007" for d in report.diagnostics)


class TestSynthesizedPrograms:
    def test_debug_flag_verifies_generated_elements(self, monkeypatch):
        from repro.synthesis.generator import (
            SYNTH_VERIFY_ENV,
            ClickGen,
            baseline_stats,
        )

        monkeypatch.setenv(SYNTH_VERIFY_ENV, "1")
        gen = ClickGen(baseline_stats(), seed=11)
        # _debug_check raises on verifier failures or error-severity
        # lint findings, so generation completing IS the assertion.
        assert len(gen.elements(10)) == 10

    def test_debug_flag_rejects_bad_elements(self, monkeypatch):
        from repro.synthesis import generator

        monkeypatch.setenv(generator.SYNTH_VERIFY_ENV, "1")

        class Boom(Exception):
            pass

        def explode(element):
            raise Boom(element.name)

        monkeypatch.setattr(generator, "_debug_check", explode)
        gen = generator.ClickGen(generator.baseline_stats(), seed=3)
        with pytest.raises(Boom):
            gen.element("bad")

    def test_flag_off_skips_check(self, monkeypatch):
        from repro.synthesis import generator

        monkeypatch.delenv(generator.SYNTH_VERIFY_ENV, raising=False)

        def explode(element):  # pragma: no cover - must not run
            raise AssertionError("debug check ran without the flag")

        monkeypatch.setattr(generator, "_debug_check", explode)
        gen = generator.ClickGen(generator.baseline_stats(), seed=3)
        assert gen.element("ok").name == "ok"
