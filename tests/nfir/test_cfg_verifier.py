"""CFG utilities and verifier tests."""

import pytest

from repro.nfir import (
    Function,
    IRBuilder,
    Module,
    I32,
    build_cfg,
    reverse_postorder,
    verify_function,
    verify_module,
    VerificationError,
)
from repro.nfir.cfg import block_depths, loop_headers, reachable_blocks
from repro.nfir.values import Constant


def diamond_function():
    f = Function("pkt_handler")
    entry = f.add_block("entry")
    left = f.add_block("left")
    right = f.add_block("right")
    merge = f.add_block("merge")
    b = IRBuilder(f, entry)
    cond = b.icmp("ult", b.const(I32, 1), b.const(I32, 2))
    b.cond_br(cond, left, right)
    b.position_at_end(left)
    b.br(merge)
    b.position_at_end(right)
    b.br(merge)
    b.position_at_end(merge)
    b.ret()
    return f


def loop_function():
    f = Function("pkt_handler")
    entry = f.add_block("entry")
    header = f.add_block("header")
    body = f.add_block("body")
    exit_ = f.add_block("exit")
    b = IRBuilder(f, entry)
    slot = b.alloca(I32)
    b.store(b.const(I32, 0), slot)
    b.br(header)
    b.position_at_end(header)
    i = b.load(slot)
    cond = b.icmp("ult", i, b.const(I32, 10))
    b.cond_br(cond, body, exit_)
    b.position_at_end(body)
    i2 = b.load(slot)
    b.store(b.add(i2, b.const(I32, 1)), slot)
    b.br(header)
    b.position_at_end(exit_)
    b.ret()
    return f


class TestCFG:
    def test_diamond_edges(self):
        g = build_cfg(diamond_function())
        assert set(g.successors("entry")) == {"left", "right"}
        assert set(g.predecessors("merge")) == {"left", "right"}

    def test_reverse_postorder_starts_at_entry(self):
        order = reverse_postorder(diamond_function())
        assert order[0].name == "entry"
        assert order[-1].name == "merge"

    def test_loop_headers(self):
        assert loop_headers(loop_function()) == {"header"}
        assert loop_headers(diamond_function()) == set()

    def test_block_depths(self):
        depths = block_depths(diamond_function())
        assert depths["entry"] == 0
        assert depths["left"] == depths["right"] == 1
        assert depths["merge"] == 2

    def test_reachable_blocks(self):
        f = diamond_function()
        dead = f.add_block("dead")
        IRBuilder(f, dead).ret()
        assert "dead" not in reachable_blocks(f)


class TestVerifier:
    def test_valid_functions_pass(self):
        verify_function(diamond_function())
        verify_function(loop_function())

    def test_unterminated_block(self):
        f = Function("f")
        f.add_block("entry")
        with pytest.raises(VerificationError, match="not terminated"):
            verify_function(f)

    def test_no_blocks(self):
        with pytest.raises(VerificationError, match="no blocks"):
            verify_function(Function("f"))

    def test_foreign_branch_target(self):
        f = diamond_function()
        other = Function("g")
        foreign = other.add_block("foreign")
        IRBuilder(other, foreign).ret()
        # Redirect entry's terminator to a foreign block.
        term = f.entry.terminator
        term.if_true = foreign
        with pytest.raises(VerificationError, match="foreign"):
            verify_function(f)

    def test_undefined_operand(self):
        f = Function("f")
        entry = f.add_block("entry")
        b = IRBuilder(f, entry)
        orphan = Constant(I32, 1)
        ghost_parent = Function("ghost")
        ghost_block = ghost_parent.add_block("g")
        gb = IRBuilder(ghost_parent, ghost_block)
        ghost_value = gb.add(gb.const(I32, 1), gb.const(I32, 2))
        gb.ret()
        b.add(ghost_value, orphan)
        b.ret()
        with pytest.raises(VerificationError, match="not defined"):
            verify_function(f)

    def test_module_requires_functions(self):
        with pytest.raises(VerificationError):
            verify_module(Module("empty"))

    def test_library_modules_verify(self, lowered_library):
        for module in lowered_library.values():
            verify_module(module)


class TestSSADominance:
    """The verifier checks true dominance, not mere reachability."""

    def test_sibling_branch_use_rejected(self):
        # A def in `left` used in `merge` IS reachable from the def
        # (the old check's criterion) but does not dominate the use:
        # control can reach merge through `right` with the value never
        # computed.  True SSA verification must reject this.
        f = Function("pkt_handler")
        entry = f.add_block("entry")
        left = f.add_block("left")
        right = f.add_block("right")
        merge = f.add_block("merge")
        b = IRBuilder(f, entry)
        cond = b.icmp("ult", b.const(I32, 1), b.const(I32, 2))
        b.cond_br(cond, left, right)
        b.position_at_end(left)
        partial = b.add(b.const(I32, 1), b.const(I32, 2))
        b.br(merge)
        b.position_at_end(right)
        b.br(merge)
        b.position_at_end(merge)
        b.add(partial, b.const(I32, 1))
        b.ret()
        with pytest.raises(VerificationError, match="does not dominate"):
            verify_function(f)

    def test_same_block_use_before_def_rejected(self):
        f = Function("f")
        entry = f.add_block("entry")
        b = IRBuilder(f, entry)
        first = b.add(b.const(I32, 1), b.const(I32, 2))
        second = b.add(b.const(I32, 3), b.const(I32, 4))
        b.ret()
        # Rewire `second` to consume `first`, then move it above:
        # index 0 now uses a value defined at index 1.
        second.lhs = first
        entry.instructions[0], entry.instructions[1] = (
            entry.instructions[1], entry.instructions[0],
        )
        with pytest.raises(VerificationError, match="defined after its use"):
            verify_function(f)

    def test_dominating_cross_block_use_accepted(self):
        f = Function("f")
        entry = f.add_block("entry")
        tail = f.add_block("tail")
        b = IRBuilder(f, entry)
        value = b.add(b.const(I32, 1), b.const(I32, 2))
        b.br(tail)
        b.position_at_end(tail)
        b.add(value, b.const(I32, 3))
        b.ret()
        verify_function(f)


def _phi_diamond():
    """Diamond whose merge block phi-selects a per-arm value."""
    f = Function("pkt_handler")
    entry = f.add_block("entry")
    left = f.add_block("left")
    right = f.add_block("right")
    merge = f.add_block("merge")
    b = IRBuilder(f, entry)
    cond = b.icmp("ult", b.const(I32, 1), b.const(I32, 2))
    b.cond_br(cond, left, right)
    b.position_at_end(left)
    from_left = b.add(b.const(I32, 10), b.const(I32, 1))
    b.br(merge)
    b.position_at_end(right)
    from_right = b.add(b.const(I32, 20), b.const(I32, 2))
    b.br(merge)
    b.position_at_end(merge)
    phi = b.phi(I32)
    phi.add_incoming(from_left, left)
    phi.add_incoming(from_right, right)
    b.ret()
    return f, phi


class TestPhiWellFormedness:
    def test_well_formed_phi_accepted(self):
        f, _ = _phi_diamond()
        verify_function(f)

    def test_incoming_from_non_predecessor(self):
        f, phi = _phi_diamond()
        entry = f.blocks[0]
        phi.incomings[1] = (phi.incomings[1][0], entry)
        with pytest.raises(VerificationError, match="not a predecessor"):
            verify_function(f)

    def test_duplicate_incoming_predecessor(self):
        f, phi = _phi_diamond()
        left = f.blocks[1]
        phi.incomings[1] = (phi.incomings[1][0], left)
        with pytest.raises(VerificationError, match="duplicate incomings"):
            verify_function(f)

    def test_missing_incoming_predecessor(self):
        f, phi = _phi_diamond()
        del phi.incomings[1]
        with pytest.raises(VerificationError, match="missing incomings"):
            verify_function(f)

    def test_incoming_value_must_dominate_predecessor(self):
        f, phi = _phi_diamond()
        # `from_left` does not dominate the `right` arm's exit.
        phi.incomings[1] = (phi.incomings[0][0], phi.incomings[1][1])
        with pytest.raises(VerificationError, match="dominate predecessor"):
            verify_function(f)


class TestStructuralTypeChecks:
    """replace_operands-style mutation cannot smuggle type mismatches
    past the verifier."""

    def test_store_type_mismatch_rejected(self):
        from repro.nfir import I64

        f = Function("f")
        entry = f.add_block("entry")
        b = IRBuilder(f, entry)
        slot = b.alloca(I32)
        store = b.store(b.const(I32, 1), slot)
        b.ret()
        store.value = Constant(I64, 1)
        with pytest.raises(VerificationError, match="store of i64"):
            verify_function(f)

    def test_load_type_mismatch_rejected(self):
        from repro.nfir import I64

        f = Function("f")
        entry = f.add_block("entry")
        b = IRBuilder(f, entry)
        slot32 = b.alloca(I32)
        slot64 = b.alloca(I64)
        b.store(b.const(I32, 0), slot32)
        b.store(b.const(I64, 0), slot64)
        load = b.load(slot32)
        b.ret()
        load.ptr = slot64
        with pytest.raises(VerificationError, match="does not match pointee"):
            verify_function(f)
