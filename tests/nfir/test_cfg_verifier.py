"""CFG utilities and verifier tests."""

import pytest

from repro.nfir import (
    Function,
    IRBuilder,
    Module,
    I32,
    build_cfg,
    reverse_postorder,
    verify_function,
    verify_module,
    VerificationError,
)
from repro.nfir.cfg import block_depths, loop_headers, reachable_blocks
from repro.nfir.values import Constant


def diamond_function():
    f = Function("pkt_handler")
    entry = f.add_block("entry")
    left = f.add_block("left")
    right = f.add_block("right")
    merge = f.add_block("merge")
    b = IRBuilder(f, entry)
    cond = b.icmp("ult", b.const(I32, 1), b.const(I32, 2))
    b.cond_br(cond, left, right)
    b.position_at_end(left)
    b.br(merge)
    b.position_at_end(right)
    b.br(merge)
    b.position_at_end(merge)
    b.ret()
    return f


def loop_function():
    f = Function("pkt_handler")
    entry = f.add_block("entry")
    header = f.add_block("header")
    body = f.add_block("body")
    exit_ = f.add_block("exit")
    b = IRBuilder(f, entry)
    slot = b.alloca(I32)
    b.store(b.const(I32, 0), slot)
    b.br(header)
    b.position_at_end(header)
    i = b.load(slot)
    cond = b.icmp("ult", i, b.const(I32, 10))
    b.cond_br(cond, body, exit_)
    b.position_at_end(body)
    i2 = b.load(slot)
    b.store(b.add(i2, b.const(I32, 1)), slot)
    b.br(header)
    b.position_at_end(exit_)
    b.ret()
    return f


class TestCFG:
    def test_diamond_edges(self):
        g = build_cfg(diamond_function())
        assert set(g.successors("entry")) == {"left", "right"}
        assert set(g.predecessors("merge")) == {"left", "right"}

    def test_reverse_postorder_starts_at_entry(self):
        order = reverse_postorder(diamond_function())
        assert order[0].name == "entry"
        assert order[-1].name == "merge"

    def test_loop_headers(self):
        assert loop_headers(loop_function()) == {"header"}
        assert loop_headers(diamond_function()) == set()

    def test_block_depths(self):
        depths = block_depths(diamond_function())
        assert depths["entry"] == 0
        assert depths["left"] == depths["right"] == 1
        assert depths["merge"] == 2

    def test_reachable_blocks(self):
        f = diamond_function()
        dead = f.add_block("dead")
        IRBuilder(f, dead).ret()
        assert "dead" not in reachable_blocks(f)


class TestVerifier:
    def test_valid_functions_pass(self):
        verify_function(diamond_function())
        verify_function(loop_function())

    def test_unterminated_block(self):
        f = Function("f")
        f.add_block("entry")
        with pytest.raises(VerificationError, match="not terminated"):
            verify_function(f)

    def test_no_blocks(self):
        with pytest.raises(VerificationError, match="no blocks"):
            verify_function(Function("f"))

    def test_foreign_branch_target(self):
        f = diamond_function()
        other = Function("g")
        foreign = other.add_block("foreign")
        IRBuilder(other, foreign).ret()
        # Redirect entry's terminator to a foreign block.
        term = f.entry.terminator
        term.if_true = foreign
        with pytest.raises(VerificationError, match="foreign"):
            verify_function(f)

    def test_undefined_operand(self):
        f = Function("f")
        entry = f.add_block("entry")
        b = IRBuilder(f, entry)
        orphan = Constant(I32, 1)
        ghost_parent = Function("ghost")
        ghost_block = ghost_parent.add_block("g")
        gb = IRBuilder(ghost_parent, ghost_block)
        ghost_value = gb.add(gb.const(I32, 1), gb.const(I32, 2))
        gb.ret()
        b.add(ghost_value, orphan)
        b.ret()
        with pytest.raises(VerificationError, match="not defined"):
            verify_function(f)

    def test_module_requires_functions(self):
        with pytest.raises(VerificationError):
            verify_module(Module("empty"))

    def test_library_modules_verify(self, lowered_library):
        for module in lowered_library.values():
            verify_module(module)
