"""Dataflow-analysis tests: dominator tree vs a brute-force oracle on
random CFGs, and the standard analyses on known-shape functions."""

import random

import pytest

from repro.nfir import Function, I32, IRBuilder
from repro.nfir.analysis import (
    DefUseChains,
    DominatorTree,
    liveness,
    maybe_uninitialized_loads,
    reaching_stores,
    slot_of,
    solve,
    stores_reaching,
)
from repro.nfir.analysis.dataflow import DataflowProblem


def diamond_function():
    """entry -> (left|right) -> merge, with a value defined per arm."""
    f = Function("pkt_handler")
    entry = f.add_block("entry")
    left = f.add_block("left")
    right = f.add_block("right")
    merge = f.add_block("merge")
    b = IRBuilder(f, entry)
    base = b.add(b.const(I32, 1), b.const(I32, 2))
    cond = b.icmp("ult", base, b.const(I32, 5))
    b.cond_br(cond, left, right)
    b.position_at_end(left)
    b.add(base, b.const(I32, 10))
    b.br(merge)
    b.position_at_end(right)
    b.br(merge)
    b.position_at_end(merge)
    b.add(base, b.const(I32, 30))
    b.ret()
    return f, base


def loop_function():
    f = Function("pkt_handler")
    entry = f.add_block("entry")
    header = f.add_block("header")
    body = f.add_block("body")
    exit_ = f.add_block("exit")
    b = IRBuilder(f, entry)
    slot = b.alloca(I32)
    init = b.store(b.const(I32, 0), slot)
    b.br(header)
    b.position_at_end(header)
    i = b.load(slot)
    cond = b.icmp("ult", i, b.const(I32, 10))
    b.cond_br(cond, body, exit_)
    b.position_at_end(body)
    step = b.store(b.add(b.load(slot), b.const(I32, 1)), slot)
    b.br(header)
    b.position_at_end(exit_)
    b.ret()
    return f, slot, init, step, i


def random_cfg(rng, n_blocks):
    """A random (possibly partially unreachable) function shape."""
    f = Function("rand")
    blocks = [f.add_block(f"b{i}") for i in range(n_blocks)]
    for block in blocks:
        b = IRBuilder(f, block)
        roll = rng.random()
        if roll < 0.2:
            b.ret()
        elif roll < 0.55:
            b.br(rng.choice(blocks))
        else:
            cond = b.icmp("ult", b.const(I32, 1), b.const(I32, 2))
            b.cond_br(cond, rng.choice(blocks), rng.choice(blocks))
    return f


def oracle_reachable(function, avoiding=None):
    """Block names reachable from the entry without passing through
    ``avoiding`` (the textbook dominance criterion)."""
    entry = function.entry
    if entry.name == avoiding:
        return set()
    seen = {entry.name}
    stack = [entry]
    while stack:
        block = stack.pop()
        for succ in block.successors():
            if succ.name == avoiding or succ.name in seen:
                continue
            seen.add(succ.name)
            stack.append(succ)
    return seen


class TestDominatorOracle:
    """CHK dominator tree against brute force: ``a`` dominates ``b``
    iff removing ``a`` disconnects ``b`` from the entry."""

    @pytest.mark.parametrize("seed", range(25))
    def test_random_cfgs(self, seed):
        rng = random.Random(seed)
        f = random_cfg(rng, rng.randint(3, 9))
        tree = DominatorTree(f)
        reachable = oracle_reachable(f)
        assert tree.reachable == reachable
        names = [b.name for b in f.blocks]
        for a in names:
            without_a = oracle_reachable(f, avoiding=a)
            for b in names:
                expected = (
                    a in reachable
                    and b in reachable
                    and (a == b or b not in without_a)
                )
                assert tree.dominates(a, b) == expected, (seed, a, b)

    @pytest.mark.parametrize("seed", range(25))
    def test_frontier_matches_definition(self, seed):
        # DF(a) = {b : a dominates a predecessor of b, a !sdom b}.
        rng = random.Random(1000 + seed)
        f = random_cfg(rng, rng.randint(3, 9))
        tree = DominatorTree(f)
        preds = {b.name: set() for b in f.blocks}
        for block in f.blocks:
            for succ in block.successors():
                preds[succ.name].add(block.name)
        frontier = tree.frontier()
        for a in tree.reachable:
            expected = {
                b
                for b in tree.reachable
                if any(tree.dominates(a, p) for p in preds[b])
                and not tree.strictly_dominates(a, b)
            }
            assert frontier[a] == expected, (seed, a)

    def test_idom_and_depth(self):
        f, _ = diamond_function()
        tree = DominatorTree(f)
        assert tree.idom("entry") == "entry"
        assert tree.idom("left") == tree.idom("right") == "entry"
        assert tree.idom("merge") == "entry"
        assert tree.depth("entry") == 0
        assert tree.depth("merge") == 1

    def test_unreachable_blocks_never_dominate(self):
        f, _ = diamond_function()
        dead = f.add_block("dead")
        IRBuilder(f, dead).ret()
        tree = DominatorTree(f)
        assert "dead" not in tree.reachable
        assert not tree.dominates("dead", "merge")
        assert not tree.dominates("entry", "dead")
        assert tree.idom("dead") is None


class TestLiveness:
    def test_diamond_value_live_through_both_arms(self):
        f, base = diamond_function()
        live = liveness(f)
        # `base` is used in left and merge, so it is live out of entry
        # and live through the right arm (merge still needs it).
        assert base in live.out_sets["entry"]
        assert base in live.in_sets["left"]
        assert base in live.in_sets["right"]
        assert base in live.in_sets["merge"]
        assert base not in live.out_sets["merge"]

    def test_loop_keeps_slot_live_around_backedge(self):
        f, slot, *_ = loop_function()
        live = liveness(f)
        assert slot in live.in_sets["header"]
        assert slot in live.out_sets["body"]
        assert slot not in live.out_sets["exit"]


class TestReachingStores:
    def test_loop_header_sees_init_and_step(self):
        f, slot, init, step, header_load = loop_function()
        result = reaching_stores(f)
        assert {init, step} <= set(result.in_sets["header"])
        assert set(stores_reaching(header_load, result)) == {init, step}

    def test_whole_slot_store_kills(self):
        f = Function("f")
        entry = f.add_block("entry")
        b = IRBuilder(f, entry)
        slot = b.alloca(I32)
        first = b.store(b.const(I32, 1), slot)
        second = b.store(b.const(I32, 2), slot)
        load = b.load(slot)
        b.ret()
        assert first is not second
        assert stores_reaching(load) == [second]

    def test_slot_of_walks_gep_and_cast(self):
        from repro.nfir.types import ArrayType

        f = Function("f")
        entry = f.add_block("entry")
        b = IRBuilder(f, entry)
        arr = b.alloca(ArrayType(I32, 4))
        p = b.gep(arr, [b.const(I32, 1)])
        b.ret()
        assert slot_of(p) is arr
        assert slot_of(b.const(I32, 0)) is None


class TestInitializedSlots:
    def test_one_armed_store_flags_merge_load(self):
        f = Function("f")
        entry = f.add_block("entry")
        then = f.add_block("then")
        merge = f.add_block("merge")
        b = IRBuilder(f, entry)
        slot = b.alloca(I32)
        cond = b.icmp("ult", b.const(I32, 1), b.const(I32, 2))
        b.cond_br(cond, then, merge)
        b.position_at_end(then)
        b.store(b.const(I32, 7), slot)
        b.br(merge)
        b.position_at_end(merge)
        load = b.load(slot)
        b.ret()
        assert maybe_uninitialized_loads(f) == [(load, slot)]

    def test_both_arms_stored_is_clean(self):
        f = Function("f")
        entry = f.add_block("entry")
        then = f.add_block("then")
        other = f.add_block("other")
        merge = f.add_block("merge")
        b = IRBuilder(f, entry)
        slot = b.alloca(I32)
        cond = b.icmp("ult", b.const(I32, 1), b.const(I32, 2))
        b.cond_br(cond, then, other)
        b.position_at_end(then)
        b.store(b.const(I32, 7), slot)
        b.br(merge)
        b.position_at_end(other)
        b.store(b.const(I32, 9), slot)
        b.br(merge)
        b.position_at_end(merge)
        b.load(slot)
        b.ret()
        assert maybe_uninitialized_loads(f) == []

    def test_loop_function_is_clean(self):
        f, *_ = loop_function()
        assert maybe_uninitialized_loads(f) == []


class TestDefUseChains:
    def test_users_and_dead(self):
        f, base = diamond_function()
        chains = DefUseChains(f)
        # base feeds the icmp plus the two adds in left/merge.
        assert chains.n_users(base) == 3
        assert not chains.is_dead(base)
        left_add = f.blocks[1].instructions[0]
        assert chains.is_dead(left_add)
        assert base in chains.uses(left_add)


class TestSolver:
    def test_rejects_unknown_direction(self):
        class Bad(DataflowProblem):
            direction = "sideways"

        f, _ = diamond_function()
        with pytest.raises(ValueError, match="direction"):
            solve(f, Bad())

    def test_rejects_unknown_meet(self):
        class Bad(DataflowProblem):
            meet = "xor"

        f, _ = diamond_function()
        with pytest.raises(ValueError, match="meet"):
            solve(f, Bad())
