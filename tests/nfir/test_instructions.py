"""Unit + property tests for NFIR instructions and evaluation
semantics (shared by the interpreter and the constant folder)."""

import pytest
from hypothesis import given, strategies as st

from repro.nfir.instructions import (
    BinaryOp,
    Cast,
    GEP,
    ICmp,
    Load,
    Select,
    Store,
    evaluate_binary,
    evaluate_icmp,
    BINARY_OPCODES,
    ICMP_PREDICATES,
)
from repro.nfir.types import I1, I8, I16, I32, PointerType, StructType
from repro.nfir.values import Argument, Constant


def arg(type_=I32, name="x"):
    return Argument(type_, name, 0)


class TestConstruction:
    def test_binop_type_mismatch(self):
        with pytest.raises(TypeError):
            BinaryOp("add", arg(I32), arg(I16, "y"))

    def test_unknown_binop(self):
        with pytest.raises(ValueError):
            BinaryOp("pow", arg(), arg())

    def test_icmp_produces_i1(self):
        cmp = ICmp("ult", arg(), Constant(I32, 4))
        assert cmp.type == I1

    def test_icmp_pointer_only_eq_ne(self):
        p = Argument(PointerType(I32), "p", 0)
        ICmp("eq", p, Constant(PointerType(I32), 0))
        with pytest.raises(TypeError):
            ICmp("ult", p, Constant(PointerType(I32), 0))

    def test_select_arm_types_must_match(self):
        cond = Argument(I1, "c", 0)
        with pytest.raises(TypeError):
            Select(cond, arg(I32), arg(I16, "y"))

    def test_zext_must_widen(self):
        with pytest.raises(TypeError):
            Cast("zext", arg(I32), I8)

    def test_load_requires_pointer(self):
        with pytest.raises(TypeError):
            Load(arg(I32))

    def test_store_type_check(self):
        p = Argument(PointerType(I32), "p", 0)
        with pytest.raises(TypeError):
            Store(Constant(I16, 1), p)

    def test_gep_field_path_types(self):
        st_ = StructType("s", (("a", I32),))
        base = Argument(PointerType(st_), "p", 0)
        gep = GEP(base, ["a"])
        assert gep.type == PointerType(I32)
        with pytest.raises(KeyError):
            GEP(base, ["missing"])
        with pytest.raises(TypeError):
            GEP(base, ["a", "a"])  # field access into non-struct i32

    def test_null_pointer_constant(self):
        c = Constant(PointerType(I8), 0)
        assert c.is_null
        assert c.ref() == "null"
        with pytest.raises(ValueError):
            Constant(PointerType(I8), 7)


class TestEvaluateBinary:
    def test_add_wraps(self):
        assert evaluate_binary("add", I8, 255, 1) == 0

    def test_sub_wraps(self):
        assert evaluate_binary("sub", I8, 0, 1) == 255

    def test_mul_wraps(self):
        assert evaluate_binary("mul", I16, 0x8000, 2) == 0

    def test_udiv_by_zero_is_zero(self):
        assert evaluate_binary("udiv", I32, 100, 0) == 0

    def test_sdiv_signs(self):
        assert evaluate_binary("sdiv", I8, I8.wrap(-7), 2) == I8.wrap(-3)
        assert evaluate_binary("sdiv", I8, 7, I8.wrap(-2)) == I8.wrap(-3)

    def test_srem_sign_follows_dividend(self):
        assert evaluate_binary("srem", I8, I8.wrap(-7), 2) == I8.wrap(-1)

    def test_shift_amount_wraps_to_width(self):
        assert evaluate_binary("shl", I8, 1, 8) == 1  # 8 % 8 == 0
        assert evaluate_binary("shl", I8, 1, 3) == 8

    def test_ashr_sign_extends(self):
        assert evaluate_binary("ashr", I8, 0x80, 1) == 0xC0

    def test_lshr_zero_fills(self):
        assert evaluate_binary("lshr", I8, 0x80, 1) == 0x40

    @given(
        op=st.sampled_from(BINARY_OPCODES),
        a=st.integers(min_value=0, max_value=2**32 - 1),
        b=st.integers(min_value=0, max_value=2**32 - 1),
    )
    def test_results_stay_in_range(self, op, a, b):
        result = evaluate_binary(op, I32, a, b)
        assert 0 <= result <= I32.max_unsigned()

    @given(
        a=st.integers(min_value=0, max_value=255),
        b=st.integers(min_value=0, max_value=255),
    )
    def test_add_commutes(self, a, b):
        assert evaluate_binary("add", I8, a, b) == evaluate_binary("add", I8, b, a)

    @given(a=st.integers(min_value=0, max_value=2**32 - 1))
    def test_xor_self_is_zero(self, a):
        assert evaluate_binary("xor", I32, a, a) == 0


class TestEvaluateICmp:
    def test_unsigned_vs_signed(self):
        # 0xFF is -1 signed, 255 unsigned.
        assert evaluate_icmp("ugt", I8, 0xFF, 1) == 1
        assert evaluate_icmp("sgt", I8, 0xFF, 1) == 0

    @given(
        pred=st.sampled_from(ICMP_PREDICATES),
        a=st.integers(min_value=0, max_value=2**16 - 1),
        b=st.integers(min_value=0, max_value=2**16 - 1),
    )
    def test_returns_bool(self, pred, a, b):
        assert evaluate_icmp(pred, I16, a, b) in (0, 1)

    @given(a=st.integers(min_value=0, max_value=2**16 - 1))
    def test_eq_reflexive(self, a):
        assert evaluate_icmp("eq", I16, a, a) == 1
        assert evaluate_icmp("ule", I16, a, a) == 1
        assert evaluate_icmp("ult", I16, a, a) == 0

    @given(
        a=st.integers(min_value=0, max_value=2**16 - 1),
        b=st.integers(min_value=0, max_value=2**16 - 1),
    )
    def test_trichotomy(self, a, b):
        lt = evaluate_icmp("ult", I16, a, b)
        gt = evaluate_icmp("ugt", I16, a, b)
        eq = evaluate_icmp("eq", I16, a, b)
        assert lt + gt + eq == 1
