"""State-footprint domain tests: read-only verdicts, per-flow vs
cross-flow keying, and interval-proven resident-size bounds."""

from repro.nfir import (
    ArrayType,
    Function,
    GlobalVariable,
    I8,
    I32,
    IRBuilder,
    Module,
    PointerType,
)
from repro.nfir.analysis.footprint import (
    CROSS_FLOW,
    PER_FLOW,
    StateFootprint,
    module_footprints,
    read_only_globals,
)


def _module_with(function, *globals_):
    module = Module("fixture")
    module.add_function(function)
    for g in globals_:
        module.add_global(g)
    return module


def _handler(args=()):
    f = Function("pkt_handler", args=args)
    entry = f.add_block("entry")
    return f, IRBuilder(f, entry)


class TestReadOnlyGlobals:
    def test_load_only_global_is_read_only(self):
        f, b = _handler()
        lut = GlobalVariable("lut", ArrayType(I32, 16), kind="array")
        b.load(b.gep(lut, [b.const(I32, 3)]))
        b.ret()
        assert read_only_globals(_module_with(f, lut)) == {"lut"}

    def test_any_store_disqualifies(self):
        f, b = _handler()
        ctr = GlobalVariable("ctr", I32)
        b.store(b.add(b.load(ctr), b.const(I32, 1)), ctr)
        b.ret()
        assert read_only_globals(_module_with(f, ctr)) == set()

    def test_api_classification(self):
        f, b = _handler()
        tbl = GlobalVariable("tbl", ArrayType(I32, 64), kind="hashmap")
        vec = GlobalVariable("vec", ArrayType(I32, 64), kind="vector")
        b.call("hashmap_find", [tbl, b.const(I32, 1)], PointerType(I32))
        b.call("vector_push", [vec, b.const(I32, 1)], I32)
        b.ret()
        # hashmap_find only reads its backing store; vector_push writes.
        assert read_only_globals(_module_with(f, tbl, vec)) == {"tbl"}

    def test_unknown_api_assumed_read_write(self):
        f, b = _handler()
        tbl = GlobalVariable("tbl", ArrayType(I32, 64), kind="hashmap")
        b.call("mystery_helper", [tbl], I32)
        b.ret()
        assert read_only_globals(_module_with(f, tbl)) == set()


class TestStateFootprintProps:
    def test_verdict_properties(self):
        fp = StateFootprint("g", "array", 64, n_reads=3, n_writes=0,
                            keying=PER_FLOW)
        assert fp.read_only and fp.accessed and fp.per_flow
        fp2 = StateFootprint("h", "scalar", 4)
        assert not fp2.accessed and not fp2.read_only
        d = fp.to_dict()
        assert d["read_only"] is True and d["keying"] == PER_FLOW


class TestModuleFootprints:
    def test_masked_index_proves_resident_bound(self):
        f, b = _handler(args=[("hash", I32)])
        (hash_,) = f.args
        table = GlobalVariable("table", ArrayType(I32, 4096), kind="array")
        idx = b.binop("and", hash_, b.const(I32, 0xFF))
        b.load(b.gep(table, [idx]))
        b.ret()
        fps = module_footprints(_module_with(f, table))
        fp = fps["table"]
        assert fp.declared_bytes == 4096 * 4
        assert fp.resident_proven
        assert fp.resident_bytes == 256 * 4
        assert fp.read_only
        # Index derived from the packet hash -> disjoint per flow.
        assert fp.keying == PER_FLOW

    def test_constant_index_is_cross_flow(self):
        f, b = _handler()
        table = GlobalVariable("table", ArrayType(I32, 4096), kind="array")
        b.store(b.const(I32, 1), b.gep(table, [b.const(I32, 7)]))
        b.ret()
        fp = module_footprints(_module_with(f, table))["table"]
        assert fp.keying == CROSS_FLOW
        assert fp.n_writes == 1 and fp.n_reads == 0
        assert fp.resident_proven and fp.resident_bytes == 4

    def test_unconstrained_index_stays_declared(self):
        f, b = _handler(args=[("hash", I32)])
        (hash_,) = f.args
        table = GlobalVariable("small", ArrayType(I8, 16), kind="array")
        b.load(b.gep(table, [hash_]))  # top index, capped by the count
        b.ret()
        fp = module_footprints(_module_with(f, table))["small"]
        assert not fp.resident_proven
        assert fp.resident_bytes == fp.declared_bytes == 16

    def test_api_managed_structure_stays_fully_resident(self):
        f, b = _handler(args=[("hash", I32)])
        (hash_,) = f.args
        tbl = GlobalVariable("flows", ArrayType(I32, 1024), kind="hashmap")
        b.call("hashmap_insert", [tbl, hash_], I32)
        b.ret()
        fp = module_footprints(_module_with(f, tbl))["flows"]
        assert not fp.resident_proven
        assert fp.n_writes == 1
        # The key comes from the packet -> per-flow keying.
        assert fp.keying == PER_FLOW

    def test_shared_analyses_are_reused(self):
        from repro.nfir.analysis.absint import IntervalAnalysis

        f, b = _handler()
        g = GlobalVariable("g", I32)
        b.store(b.const(I32, 1), g)
        b.ret()
        module = _module_with(f, g)
        analyses = {"pkt_handler": IntervalAnalysis(f)}
        fps = module_footprints(module, analyses=analyses)
        assert fps["g"].n_writes == 1
        assert list(analyses) == ["pkt_handler"]  # nothing re-solved
