"""Offload-lint tests: one golden fixture per built-in rule, plus the
framework pieces (diagnostics, registry, report serialization)."""

import pytest

from repro.nfir import (
    Function,
    GlobalVariable,
    I32,
    I64,
    IRBuilder,
    Module,
    VOID,
)
from repro.nfir.analysis import (
    Diagnostic,
    LintPass,
    LintReport,
    PassRegistry,
    default_registry,
    lint_module,
    sarif_report,
)


def _module_with(function, *globals_):
    module = Module("fixture")
    module.add_function(function)
    for g in globals_:
        module.add_global(g)
    return module


def _empty_handler(name="pkt_handler"):
    f = Function(name)
    entry = f.add_block("entry")
    b = IRBuilder(f, entry)
    return f, b


def _rules_fired(report, code):
    return [d for d in report.diagnostics if d.rule == code]


class TestGoldenRules:
    """Each rule has a minimal IR fixture that triggers exactly it."""

    def test_cl001_signed_divide(self):
        f, b = _empty_handler()
        b.binop("sdiv", b.const(I32, 8), b.const(I32, 3))
        b.ret()
        report = lint_module(_module_with(f), only=["CL001"])
        (diag,) = report.diagnostics
        assert diag.severity == "warning"
        assert "sdiv" in diag.message
        assert diag.function == "pkt_handler"

    def test_cl001_wide_multiply(self):
        f, b = _empty_handler()
        b.mul(b.const(I64, 2), b.const(I64, 3))
        b.ret()
        report = lint_module(_module_with(f), only=["CL001"])
        (diag,) = report.diagnostics
        assert diag.severity == "warning"
        assert "mul_step" in diag.message

    def test_cl001_non_pow2_divide_is_note(self):
        f, b = _empty_handler()
        b.binop("udiv", b.const(I32, 100), b.const(I32, 10))
        b.ret()
        report = lint_module(_module_with(f), only=["CL001"])
        (diag,) = report.diagnostics
        assert diag.severity == "note"

    def test_cl001_pow2_divide_is_clean(self):
        f, b = _empty_handler()
        b.binop("udiv", b.const(I32, 100), b.const(I32, 8))
        b.ret()
        assert not lint_module(_module_with(f), only=["CL001"]).diagnostics

    def test_cl002_no_exit_is_error(self):
        f, b = _empty_handler()
        header = f.add_block("header")
        b.br(header)
        b.position_at_end(header)
        b.br(header)
        report = lint_module(_module_with(f), only=["CL002"])
        (diag,) = report.diagnostics
        assert diag.severity == "error"
        assert "never" in diag.message
        assert diag.block == "header"

    def test_cl002_uncounted_exit_is_warning(self):
        f, b = _empty_handler()
        header = f.add_block("header")
        body = f.add_block("body")
        exit_ = f.add_block("exit")
        slot = b.alloca(I32)
        b.store(b.const(I32, 1), slot)
        b.br(header)
        b.position_at_end(header)
        x = b.load(slot)
        b.cond_br(b.icmp("ne", x, b.const(I32, 0)), body, exit_)
        b.position_at_end(body)
        # x <- x * 2 is not a constant step; trip count is unknowable.
        b.store(b.mul(b.load(slot), b.const(I32, 2)), slot)
        b.br(header)
        b.position_at_end(exit_)
        b.ret()
        report = lint_module(_module_with(f), only=["CL002"])
        (diag,) = report.diagnostics
        assert diag.severity == "warning"
        assert "unbounded" in diag.message

    def test_cl002_counted_loop_is_clean(self):
        f, b = _empty_handler()
        header = f.add_block("header")
        body = f.add_block("body")
        exit_ = f.add_block("exit")
        slot = b.alloca(I32)
        b.store(b.const(I32, 0), slot)
        b.br(header)
        b.position_at_end(header)
        i = b.load(slot)
        b.cond_br(b.icmp("ult", i, b.const(I32, 16)), body, exit_)
        b.position_at_end(body)
        b.store(b.add(b.load(slot), b.const(I32, 1)), slot)
        b.br(header)
        b.position_at_end(exit_)
        b.ret()
        assert not lint_module(_module_with(f), only=["CL002"]).diagnostics

    def test_cl003_undefined_callee_is_error(self):
        f, b = _empty_handler()
        b.call("missing_helper", [], VOID)
        b.ret()
        report = lint_module(_module_with(f), only=["CL003"])
        (diag,) = report.diagnostics
        assert diag.severity == "error"
        assert "@missing_helper" in diag.message

    def test_cl003_recursion_is_error(self):
        f, b = _empty_handler()
        b.call("pkt_handler", [], VOID)
        b.ret()
        report = lint_module(_module_with(f), only=["CL003"])
        severities = sorted(d.severity for d in report.diagnostics)
        assert severities == ["error", "note"]
        (err,) = report.by_severity("error")
        assert "recursive" in err.message

    def test_cl003_inlinable_call_is_note(self):
        helper, hb = _empty_handler("helper")
        hb.ret()
        f, b = _empty_handler()
        b.call("helper", [], VOID)
        b.ret()
        module = _module_with(f)
        module.add_function(helper)
        report = lint_module(module, only=["CL003"])
        (diag,) = report.diagnostics
        assert diag.severity == "note"

    def test_cl004_never_accessed(self):
        f, b = _empty_handler()
        b.ret()
        unused = GlobalVariable("unused_ctr", I32)
        report = lint_module(_module_with(f, unused), only=["CL004"])
        (diag,) = report.diagnostics
        assert diag.severity == "warning"
        assert "never accessed" in diag.message

    def test_cl004_write_only(self):
        f, b = _empty_handler()
        g = GlobalVariable("wo_ctr", I32)
        b.store(b.const(I32, 1), g)
        b.ret()
        report = lint_module(_module_with(f, g), only=["CL004"])
        (diag,) = report.diagnostics
        assert "write-only" in diag.message

    def test_cl004_read_and_written_is_clean(self):
        f, b = _empty_handler()
        g = GlobalVariable("ctr", I32)
        b.store(b.add(b.load(g), b.const(I32, 1)), g)
        b.ret()
        assert not lint_module(_module_with(f, g), only=["CL004"]).diagnostics

    def test_cl005_one_armed_init(self):
        f, b = _empty_handler()
        then = f.add_block("then")
        merge = f.add_block("merge")
        slot = b.alloca(I32)
        b.cond_br(b.icmp("ult", b.const(I32, 1), b.const(I32, 2)), then, merge)
        b.position_at_end(then)
        b.store(b.const(I32, 7), slot)
        b.br(merge)
        b.position_at_end(merge)
        b.load(slot)
        b.ret()
        report = lint_module(_module_with(f), only=["CL005"])
        (diag,) = report.diagnostics
        assert diag.severity == "warning"
        assert diag.block == "merge"

    def test_cl006_unreachable_block(self):
        f, b = _empty_handler()
        b.ret()
        dead = f.add_block("dead")
        IRBuilder(f, dead).ret()
        report = lint_module(_module_with(f), only=["CL006"])
        (diag,) = report.diagnostics
        assert diag.severity == "warning"
        assert diag.block == "dead"

    def test_cl007_stateful_rmw(self):
        f, b = _empty_handler()
        g = GlobalVariable("pkt_count", I32)
        b.store(b.add(b.load(g), b.const(I32, 1)), g)
        b.ret()
        report = lint_module(_module_with(f, g), only=["CL007"])
        (diag,) = report.diagnostics
        assert diag.severity == "warning"
        assert "@pkt_count" in diag.message

    def test_cl007_blind_write_is_clean(self):
        f, b = _empty_handler()
        g = GlobalVariable("last_seen", I32)
        b.store(b.const(I32, 1), g)
        b.ret()
        assert not lint_module(_module_with(f, g), only=["CL007"]).diagnostics

    def test_cl008_oversized_global_is_error(self):
        f, b = _empty_handler()
        b.ret()
        huge = GlobalVariable("huge", I32, size_bytes=4 * 2**30)
        report = lint_module(_module_with(f, huge), only=["CL008"])
        assert report.n_errors >= 1
        assert any("no NIC memory region" in d.message
                   for d in report.by_severity("error"))

    def test_cl008_dram_only_is_warning(self):
        f, b = _empty_handler()
        b.ret()
        big = GlobalVariable("big", I32, size_bytes=8 * 2**20)
        report = lint_module(_module_with(f, big), only=["CL008"])
        (diag,) = report.diagnostics
        assert diag.severity == "warning"
        assert "EMEM" in diag.message

    def test_cl008_misaligned_is_note(self):
        f, b = _empty_handler()
        b.ret()
        odd = GlobalVariable("odd", I32, size_bytes=6)
        report = lint_module(_module_with(f, odd), only=["CL008"])
        (diag,) = report.diagnostics
        assert diag.severity == "note"
        assert "4-byte" in diag.message


class TestDiagnostic:
    def test_render_and_location(self):
        diag = Diagnostic("CL001", "warning", "msg", function="f",
                          block="entry", instruction="%v1")
        assert diag.render() == "warning[CL001] @f:%entry:%v1: msg"
        assert Diagnostic("CL008", "note", "m").location() == "<module>"

    def test_roundtrip(self):
        diag = Diagnostic("CL005", "warning", "msg", function="f")
        assert Diagnostic.from_dict(diag.to_dict()) == diag

    def test_invalid_severity_rejected(self):
        with pytest.raises(ValueError, match="severity"):
            Diagnostic("CL001", "fatal", "msg")


class TestRegistry:
    def test_builtins_present(self):
        registry = default_registry()
        assert len(registry) == 13
        assert registry.codes == (
            [f"CL00{i}" for i in range(1, 10)]
            + [f"CL0{i}" for i in range(10, 14)]
        )

    def test_get_by_code_or_name(self):
        registry = default_registry()
        assert registry.get("CL007") is registry.get("race-candidate")
        with pytest.raises(KeyError):
            registry.get("CL999")

    def test_duplicate_code_rejected(self):
        registry = default_registry()
        class Dup(LintPass):
            code = "CL001"
            name = "dup"
        with pytest.raises(ValueError, match="duplicate"):
            registry.register(Dup())

    def test_unstable_code_rejected(self):
        class NoCode(LintPass):
            pass
        with pytest.raises(ValueError, match="CL###"):
            PassRegistry().register(NoCode())

    def test_custom_pass_extension(self):
        # The documented extension point: register a third-party rule
        # and run it alongside (or instead of) the built-ins.
        class NamingPass(LintPass):
            code = "CL900"
            name = "handler-naming"
            description = "handler functions must be named pkt_handler"

            def run(self, module, ctx):
                for function in module.functions.values():
                    if function.name != "pkt_handler":
                        yield self.diag(
                            "note",
                            f"@{function.name} is not named pkt_handler",
                            function=function.name,
                        )

        f, b = _empty_handler("weird_name")
        b.ret()
        registry = default_registry()
        registry.register(NamingPass)
        report = registry.run(_module_with(f), only=["CL900"])
        (diag,) = report.diagnostics
        assert diag.rule == "CL900"

    def test_disable(self):
        f, b = _empty_handler()
        g = GlobalVariable("ctr", I32)
        b.store(b.add(b.load(g), b.const(I32, 1)), g)
        b.ret()
        module = _module_with(f, g)
        assert lint_module(module).n_warnings >= 1
        assert lint_module(module, disable=["CL007"]).n_warnings == 0


class TestReport:
    def _report(self):
        return LintReport("m", [
            Diagnostic("CL001", "warning", "w"),
            Diagnostic("CL002", "error", "e"),
            Diagnostic("CL008", "note", "n"),
        ])

    def test_counts_and_severity(self):
        report = self._report()
        assert report.counts() == {"note": 1, "warning": 1, "error": 1}
        assert report.max_severity == "error"
        assert not report.clean
        assert LintReport("m").clean
        assert LintReport("m").max_severity is None

    def test_json_roundtrip(self):
        report = self._report()
        restored = LintReport.from_dict(report.to_dict())
        assert restored == report

    def test_schema_mismatch_rejected(self):
        bad = self._report().to_dict()
        bad["schema"] = 99
        with pytest.raises(ValueError, match="schema"):
            LintReport.from_dict(bad)

    def test_sarif_shape(self):
        registry = default_registry()
        sarif = sarif_report([self._report()], registry)
        assert sarif["version"] == "2.1.0"
        run = sarif["runs"][0]
        assert len(run["tool"]["driver"]["rules"]) == len(registry)
        assert len(run["results"]) == 3
        levels = {r["level"] for r in run["results"]}
        assert levels == {"error", "warning", "note"}
