"""Baseline workflow and incremental lint cache: fingerprint
stability, file round-trips, new-findings-only filtering, and the
content-addressed cache hit/miss protocol."""

import pytest

from repro.core.artifacts import ArtifactCache
from repro.errors import ClaraError
from repro.nfir import Function, GlobalVariable, I32, IRBuilder, Module
from repro.nfir.analysis import default_registry, lint_module
from repro.nfir.analysis.baseline import (
    LINT_BASELINE_SCHEMA,
    LintBaseline,
    apply_baseline,
    baseline_from_reports,
    diagnostic_fingerprint,
    report_fingerprints,
)
from repro.nfir.analysis.lint import Diagnostic, LintReport, SUPPRESS_META_KEY
from repro.nfir.analysis.lint_cache import cached_lint_run, lint_cache_key


def _module(name="fixture", sdiv=True, rmw=False):
    module = Module(name)
    f = Function("pkt_handler")
    b = IRBuilder(f, f.add_block("entry"))
    if sdiv:
        b.binop("sdiv", b.const(I32, 8), b.const(I32, 3))
    if rmw:
        g = GlobalVariable("ctr", I32)
        module.add_global(g)
        b.store(b.add(b.load(g), b.const(I32, 1)), g)
    b.ret()
    module.add_function(f)
    return module


class TestFingerprints:
    def test_stable_across_message_rewording(self):
        a = Diagnostic("CL001", "warning", "old text", function="f",
                       block="entry", instruction="%v1")
        b = Diagnostic("CL001", "error", "new text entirely", function="f",
                       block="entry", instruction="%v1",
                       data={"extra": 1})
        assert (
            diagnostic_fingerprint("m", a) == diagnostic_fingerprint("m", b)
        )

    def test_sensitive_to_rule_module_and_location(self):
        base = Diagnostic("CL001", "warning", "m", function="f")
        fp = diagnostic_fingerprint("mod", base)
        assert fp != diagnostic_fingerprint("other_mod", base)
        assert fp != diagnostic_fingerprint(
            "mod", Diagnostic("CL002", "warning", "m", function="f")
        )
        assert fp != diagnostic_fingerprint("mod", base, ordinal=1)
        assert len(fp) == 16

    def test_ordinals_disambiguate_duplicates(self):
        dup = Diagnostic("CL001", "warning", "m", function="f",
                         block="entry", instruction="sdiv")
        report = LintReport("mod", diagnostics=[dup, dup])
        fps = report_fingerprints(report)
        assert len(fps) == 2 and fps[0] != fps[1]


class TestBaselineFile:
    def test_roundtrip_via_dict(self):
        baseline = LintBaseline(
            target="nfp-4000",
            fingerprints={"a": {"0" * 16}, "b": {"1" * 16, "2" * 16}},
        )
        again = LintBaseline.from_dict(baseline.to_dict())
        assert again == baseline
        assert ("b", "1" * 16) in again
        assert ("b", "9" * 16) not in again
        assert again.n_fingerprints == 3

    def test_save_and_load(self, tmp_path):
        baseline = LintBaseline(fingerprints={"m": {"a" * 16}})
        path = baseline.save(tmp_path / "baseline.json")
        assert LintBaseline.load(path) == baseline

    def test_schema_mismatch_rejected(self):
        bad = {"schema": LINT_BASELINE_SCHEMA + 1, "fingerprints": {}}
        with pytest.raises(ClaraError, match="schema"):
            LintBaseline.from_dict(bad)

    def test_missing_file_rejected(self, tmp_path):
        with pytest.raises(ClaraError, match="not found"):
            LintBaseline.load(tmp_path / "absent.json")

    def test_invalid_json_rejected(self, tmp_path):
        path = tmp_path / "garbage.json"
        path.write_text("{nope", encoding="utf-8")
        with pytest.raises(ClaraError, match="JSON"):
            LintBaseline.load(path)


class TestApplyBaseline:
    def test_unchanged_module_reports_zero_new(self):
        report = lint_module(_module(), only=["CL001"])
        assert report.diagnostics  # the fixture does fire
        baseline = baseline_from_reports([report], target="nfp-4000")
        again = lint_module(_module(), only=["CL001"])
        filtered, n_baselined = apply_baseline([again], baseline)
        assert n_baselined == len(report.diagnostics)
        assert not filtered[0].diagnostics

    def test_new_finding_survives(self):
        baseline = baseline_from_reports(
            [lint_module(_module(), only=["CL001"])]
        )
        grown = lint_module(
            _module(rmw=True), only=["CL001", "CL007"]
        )
        filtered, n_baselined = apply_baseline([grown], baseline)
        assert n_baselined == 1  # the legacy sdiv
        kept = filtered[0].diagnostics
        assert [d.rule for d in kept] == ["CL007"]

    def test_suppressed_carried_through(self):
        module = _module()
        instr = next(
            i for i in module.functions["pkt_handler"].instructions()
            if i.opcode == "sdiv"
        )
        instr.meta[SUPPRESS_META_KEY] = "CL001"
        report = lint_module(module, only=["CL001"])
        filtered, _ = apply_baseline([report], LintBaseline())
        assert filtered[0].n_suppressed == 1


class TestLintCache:
    def test_key_is_deterministic_and_content_addressed(self):
        key = lint_cache_key(_module(), ["CL001"], target="nfp-4000")
        assert key == lint_cache_key(
            _module(), ["CL001"], target="nfp-4000"
        )
        assert key.startswith("lint-")
        # Rule order is canonicalized; content changes miss.
        assert key == lint_cache_key(
            _module(), ["CL001"], target="nfp-4000"
        )
        assert key != lint_cache_key(
            _module(rmw=True), ["CL001"], target="nfp-4000"
        )
        assert key != lint_cache_key(
            _module(), ["CL001", "CL007"], target="nfp-4000"
        )
        assert key != lint_cache_key(
            _module(), ["CL001"], target="dpu-offpath"
        )

    def test_suppression_directives_change_the_key(self):
        marked = _module()
        instr = next(
            i for i in marked.functions["pkt_handler"].instructions()
            if i.opcode == "sdiv"
        )
        instr.meta[SUPPRESS_META_KEY] = "CL001"
        assert lint_cache_key(marked, ["CL001"]) != lint_cache_key(
            _module(), ["CL001"]
        )

    def test_miss_then_hit_roundtrips_report(self, tmp_path):
        """The acceptance property: re-linting an unchanged (IR,
        target, rules) triple is a pure artifact-cache hit."""
        cache = ArtifactCache(tmp_path)
        registry = default_registry()
        report1, outcome1 = cached_lint_run(
            _module(), registry, cache, only=["CL001"], target="nfp-4000"
        )
        assert outcome1 == "miss"
        report2, outcome2 = cached_lint_run(
            _module(), registry, cache, only=["CL001"], target="nfp-4000"
        )
        assert outcome2 == "hit"
        assert report2.to_dict() == report1.to_dict()

    def test_changed_ir_misses(self, tmp_path):
        cache = ArtifactCache(tmp_path)
        registry = default_registry()
        cached_lint_run(_module(), registry, cache, only=["CL001"])
        _, outcome = cached_lint_run(
            _module(rmw=True), registry, cache, only=["CL001"]
        )
        assert outcome == "miss"

    def test_no_cache_degrades_to_plain_run(self):
        report, outcome = cached_lint_run(
            _module(), default_registry(), None, only=["CL001"]
        )
        assert outcome == "off"
        assert report.diagnostics

    def test_malformed_entry_falls_back_to_fresh_run(self, tmp_path):
        cache = ArtifactCache(tmp_path)
        registry = default_registry()
        key = lint_cache_key(
            _module(), [p.code for p in registry.select(only=["CL001"])]
        )
        cache.store(key, {"report": {"schema": -1}})
        report, outcome = cached_lint_run(
            _module(), registry, cache, only=["CL001"]
        )
        assert outcome == "miss"  # re-ran and overwrote the bad entry
        assert report.diagnostics
        again, outcome2 = cached_lint_run(
            _module(), registry, cache, only=["CL001"]
        )
        assert outcome2 == "hit"
        assert again.to_dict() == report.to_dict()
