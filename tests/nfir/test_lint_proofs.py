"""Second-generation (proof) lint rules: CL009-CL013 golden fixtures,
the cross-rule downgrade mechanism, the CL007 read-only exemption,
inline suppressions, and SARIF fix emission."""

from repro.nfir import (
    ArrayType,
    Function,
    GlobalVariable,
    I8,
    I32,
    IRBuilder,
    Module,
    PointerType,
)
from repro.nfir.analysis import default_registry, lint_module, sarif_report
from repro.nfir.analysis.lint import (
    Diagnostic,
    SUPPRESS_META_KEY,
    apply_downgrades,
)


def _module_with(function, *globals_):
    module = Module("fixture")
    module.add_function(function)
    for g in globals_:
        module.add_global(g)
    return module


def _handler(args=()):
    f = Function("pkt_handler", args=args)
    entry = f.add_block("entry")
    return f, IRBuilder(f, entry)


def _rules_fired(report, code):
    return [d for d in report.diagnostics if d.rule == code]


def _slot_bounded_loop(limit=50):
    """A loop whose bound round-trips through a stack slot: the
    syntactic CL002 check cannot see it is invariant, the interval
    engine can."""
    f, b = _handler()
    header = f.add_block("header")
    body = f.add_block("body")
    exit_ = f.add_block("exit")
    n_slot = b.alloca(I32)
    i_slot = b.alloca(I32)
    b.store(b.const(I32, limit), n_slot)
    b.store(b.const(I32, 0), i_slot)
    b.br(header)
    b.position_at_end(header)
    i = b.load(i_slot)
    n = b.load(n_slot)  # in-loop load: not syntactically invariant
    b.cond_br(b.icmp("ult", i, n), body, exit_)
    b.position_at_end(body)
    b.store(b.add(b.load(i_slot), b.const(I32, 1)), i_slot)
    b.br(header)
    b.position_at_end(exit_)
    b.ret()
    return _module_with(f)


class TestCl009BoundedLoopProof:
    def test_proof_note_with_trip_bound(self):
        report = lint_module(_slot_bounded_loop(), only=["CL009"])
        (diag,) = report.diagnostics
        assert diag.severity == "note"
        assert diag.data["trip_max"] == 50
        assert diag.data["downgrades"] == "CL002"
        assert diag.block == "header"

    def test_downgrades_matching_cl002_warning(self):
        report = lint_module(_slot_bounded_loop(), only=["CL002", "CL009"])
        (cl002,) = _rules_fired(report, "CL002")
        assert cl002.severity == "note"
        assert cl002.data["downgraded_by"] == "CL009"
        assert "[downgraded by CL009]" in cl002.message
        assert report.clean  # nothing above note survives

    def test_silent_on_syntactically_counted_loops(self):
        f, b = _handler()
        header = f.add_block("header")
        body = f.add_block("body")
        exit_ = f.add_block("exit")
        slot = b.alloca(I32)
        b.store(b.const(I32, 0), slot)
        b.br(header)
        b.position_at_end(header)
        i = b.load(slot)
        b.cond_br(b.icmp("ult", i, b.const(I32, 16)), body, exit_)
        b.position_at_end(body)
        b.store(b.add(b.load(slot), b.const(I32, 1)), slot)
        b.br(header)
        b.position_at_end(exit_)
        b.ret()
        # CL002 accepts this loop itself; CL009 stays quiet.
        report = lint_module(_module_with(f), only=["CL002", "CL009"])
        assert not report.diagnostics

    def test_truly_unbounded_loop_keeps_warning(self):
        f, b = _handler()
        header = f.add_block("header")
        body = f.add_block("body")
        exit_ = f.add_block("exit")
        slot = b.alloca(I32)
        b.store(b.const(I32, 1), slot)
        b.br(header)
        b.position_at_end(header)
        x = b.load(slot)
        b.cond_br(b.icmp("ne", x, b.const(I32, 0)), body, exit_)
        b.position_at_end(body)
        b.store(b.mul(b.load(slot), b.const(I32, 2)), slot)
        b.br(header)
        b.position_at_end(exit_)
        b.ret()
        report = lint_module(_module_with(f), only=["CL002", "CL009"])
        (cl002,) = report.diagnostics
        assert cl002.rule == "CL002" and cl002.severity == "warning"


def _dead_branch_module():
    f, b = _handler()
    then = f.add_block("then")
    other = f.add_block("other")
    slot = b.alloca(I32)
    b.store(b.const(I32, 0), slot)
    x = b.load(slot)
    b.cond_br(b.icmp("eq", x, b.const(I32, 0)), then, other)
    b.position_at_end(then)
    b.ret()
    IRBuilder(f, other).ret()
    return _module_with(f)


class TestCl010DeadCompute:
    def test_one_sided_branch_warns_with_fix(self):
        report = lint_module(_dead_branch_module(), only=["CL010"])
        (warn,) = report.by_severity("warning")
        assert warn.data["dead_block"] == "other"
        assert warn.data["fix"]["replacement"] == "br label %then"
        assert "never be taken" in warn.message

    def test_constant_compute_is_note(self):
        f, b = _handler()
        slot = b.alloca(I32)
        b.store(b.const(I32, 5), slot)
        x = b.load(slot)
        b.add(x, b.const(I32, 3))  # always 8, but not a literal fold
        b.ret()
        report = lint_module(_module_with(f), only=["CL010"])
        (note,) = report.diagnostics
        assert note.severity == "note"
        assert note.data["constant"] == 8

    def test_literal_constant_folds_ignored(self):
        f, b = _handler()
        b.add(b.const(I32, 2), b.const(I32, 3))  # frontend artifact
        b.ret()
        assert not lint_module(_module_with(f), only=["CL010"]).diagnostics

    def test_genuine_branch_is_clean(self):
        f, b = _handler(args=[("n", I32)])
        (n,) = f.args
        then = f.add_block("then")
        other = f.add_block("other")
        b.cond_br(b.icmp("eq", n, b.const(I32, 0)), then, other)
        IRBuilder(f, then).ret()
        IRBuilder(f, other).ret()
        assert not lint_module(_module_with(f), only=["CL010"]).diagnostics


def _masked_big_table():
    """Declared far beyond SRAM, provably touching 1KB."""
    f, b = _handler(args=[("hash", I32)])
    (hash_,) = f.args
    table = GlobalVariable(
        "table", ArrayType(I32, 2 * 2**20), kind="array"
    )  # 8 MB declared
    idx = b.binop("and", hash_, b.const(I32, 0xFF))
    b.load(b.gep(table, [idx]))
    b.ret()
    return _module_with(f, table)


class TestCl011StateBoundProof:
    def test_proven_bound_downgrades_cl008(self):
        report = lint_module(_masked_big_table(), only=["CL008", "CL011"])
        (cl011,) = _rules_fired(report, "CL011")
        assert cl011.severity == "note"
        assert cl011.data["resident_bytes"] == 1024
        assert cl011.data["downgrades"] == "CL008"
        assert cl011.data["region"]
        (cl008,) = [
            d for d in _rules_fired(report, "CL008")
            if "EMEM" in d.message
        ]
        assert cl008.severity == "note"
        assert cl008.data["downgraded_by"] == "CL011"
        assert report.clean

    def test_resident_beyond_every_region_is_error(self):
        f, b = _handler(args=[("hash", I32)])
        (hash_,) = f.args
        huge = GlobalVariable(
            "huge", ArrayType(I8, 4 * 2**30), kind="array"
        )
        b.load(b.gep(huge, [hash_]))  # unconstrained: fully resident
        b.ret()
        report = lint_module(_module_with(f, huge), only=["CL011"])
        (err,) = report.by_severity("error")
        assert err.data["global"] == "huge"

    def test_untouched_global_is_ignored(self):
        f, b = _handler()
        b.ret()
        idle = GlobalVariable("idle", ArrayType(I32, 2 * 2**20))
        report = lint_module(_module_with(f, idle), only=["CL011"])
        assert not report.diagnostics  # CL004's business, not CL011's


class TestCl012ReadOnlyState:
    def test_read_only_table_gets_exoneration_note(self):
        f, b = _handler()
        lut = GlobalVariable("lut", ArrayType(I32, 16), kind="array")
        b.load(b.gep(lut, [b.const(I32, 3)]))
        b.ret()
        report = lint_module(_module_with(f, lut), only=["CL012"])
        (note,) = report.diagnostics
        assert note.data["global"] == "lut"
        assert note.data["downgrades"] == "CL007"
        assert "replicate @lut" in note.data["fix"]["description"]

    def test_written_state_gets_no_note(self):
        f, b = _handler()
        g = GlobalVariable("ctr", I32)
        b.store(b.add(b.load(g), b.const(I32, 1)), g)
        b.ret()
        assert not lint_module(_module_with(f, g), only=["CL012"]).diagnostics


class TestCl007ReadOnlyExemption:
    def _store_through_api(self, also_write_directly):
        f, b = _handler()
        rules = GlobalVariable("rules", ArrayType(I32, 64), kind="vector")
        x = b.load(b.gep(rules, [b.const(I32, 0)]))
        p = b.call("vector_at", [rules, b.const(I32, 1)], PointerType(I32))
        b.store(b.add(x, b.const(I32, 1)), p)
        if also_write_directly:
            b.store(b.const(I32, 9), b.gep(rules, [b.const(I32, 2)]))
        b.ret()
        return _module_with(f, rules)

    def test_read_only_table_is_not_a_race_candidate(self):
        report = lint_module(
            self._store_through_api(also_write_directly=False),
            only=["CL007"],
        )
        assert not report.diagnostics

    def test_directly_written_table_still_warns(self):
        report = lint_module(
            self._store_through_api(also_write_directly=True),
            only=["CL007"],
        )
        assert any(d.severity == "warning" for d in report.diagnostics)

    def test_plain_rmw_still_warns(self):
        f, b = _handler()
        g = GlobalVariable("pkt_count", I32)
        b.store(b.add(b.load(g), b.const(I32, 1)), g)
        b.ret()
        report = lint_module(_module_with(f, g), only=["CL007"])
        (diag,) = report.diagnostics
        assert diag.severity == "warning"
        assert diag.data["global"] == "pkt_count"


def _diamond_with_live_slot():
    f, b = _handler(args=[("n", I32)])
    (n,) = f.args
    then = f.add_block("then")
    other = f.add_block("other")
    merge = f.add_block("merge")
    slot = b.alloca(I32)
    b.store(b.const(I32, 7), slot)
    b.cond_br(b.icmp("ult", n, b.const(I32, 100)), then, other)
    IRBuilder(f, then).br(merge)
    IRBuilder(f, other).br(merge)
    mb = IRBuilder(f, merge)
    mb.load(slot)
    mb.ret()
    return _module_with(f)


class TestCl013HostTransferCost:
    def test_join_block_priced(self):
        report = lint_module(_diamond_with_live_slot(), only=["CL013"])
        (note,) = report.diagnostics
        assert note.block == "merge"
        assert note.data["cut_block"] == "merge"
        assert note.data["live_bytes"] >= 4  # the initialized slot
        assert note.data["transfer_cycles"] > 0

    def test_costs_differ_across_targets(self):
        module = _diamond_with_live_slot()
        nfp = lint_module(module, only=["CL013"], target="nfp-4000")
        dpu = lint_module(module, only=["CL013"], target="dpu-offpath")
        c_nfp = nfp.diagnostics[0].data["transfer_cycles"]
        c_dpu = dpu.diagnostics[0].data["transfer_cycles"]
        assert c_nfp != c_dpu  # off-path DPU pays the host-DMA hop

    def test_no_handler_means_no_cut_points(self):
        f = Function("helper")
        IRBuilder(f, f.add_block("entry")).ret()
        module = Module("fixture")
        module.add_function(f)
        assert not lint_module(module, only=["CL013"]).diagnostics


class TestDowngradeMechanism:
    def test_global_keyed_downgrade(self):
        victim = Diagnostic("CL008", "warning", "big", data={"global": "g"})
        other = Diagnostic("CL008", "warning", "big", data={"global": "h"})
        proof = Diagnostic(
            "CL011", "note", "proof",
            data={"downgrades": "CL008", "global": "g"},
        )
        apply_downgrades([victim, other, proof])
        assert victim.severity == "note"
        assert victim.data["downgraded_by"] == "CL011"
        assert other.severity == "warning"

    def test_location_keyed_downgrade(self):
        victim = Diagnostic("CL002", "warning", "loop",
                            function="f", block="header")
        elsewhere = Diagnostic("CL002", "warning", "loop",
                               function="f", block="other")
        proof = Diagnostic("CL009", "note", "proof",
                           function="f", block="header",
                           data={"downgrades": "CL002"})
        apply_downgrades([victim, elsewhere, proof])
        assert victim.severity == "note"
        assert elsewhere.severity == "warning"


class TestSuppressions:
    def test_instruction_level_suppression_counted(self):
        f, b = _handler()
        instr = b.binop("sdiv", b.const(I32, 8), b.const(I32, 3))
        instr.meta[SUPPRESS_META_KEY] = "CL001"
        b.ret()
        report = lint_module(_module_with(f), only=["CL001"])
        assert not report.diagnostics
        assert report.n_suppressed == 1
        assert report.suppressed[0].rule == "CL001"
        assert "1 suppressed" in report.render()

    def test_module_level_all_suppression(self):
        module = _dead_branch_module()
        module.meta[SUPPRESS_META_KEY] = "all"
        report = lint_module(module, only=["CL010"])
        assert not report.diagnostics and report.n_suppressed >= 1

    def test_unrelated_rule_not_suppressed(self):
        f, b = _handler()
        instr = b.binop("sdiv", b.const(I32, 8), b.const(I32, 3))
        instr.meta[SUPPRESS_META_KEY] = "CL999"
        b.ret()
        report = lint_module(_module_with(f), only=["CL001"])
        assert len(report.diagnostics) == 1 and not report.suppressed

    def test_suppressed_roundtrip_through_dict(self):
        from repro.nfir.analysis import LintReport

        f, b = _handler()
        instr = b.binop("sdiv", b.const(I32, 8), b.const(I32, 3))
        instr.meta[SUPPRESS_META_KEY] = "CL001"
        b.ret()
        report = lint_module(_module_with(f), only=["CL001"])
        again = LintReport.from_dict(report.to_dict())
        assert again.n_suppressed == 1
        assert again.suppressed == report.suppressed


class TestSarifFixes:
    def test_dead_branch_fix_has_replacement(self):
        registry = default_registry()
        report = lint_module(
            _dead_branch_module(), registry=registry, only=["CL010"]
        )
        sarif = sarif_report([report], registry)
        (fixed,) = [
            r for r in sarif["runs"][0]["results"] if "fixes" in r
        ]
        (fix,) = fixed["fixes"]
        assert "unconditional" in fix["description"]["text"]
        (change,) = fix["artifactChanges"]
        (replacement,) = change["replacements"]
        assert replacement["insertedContent"]["text"] == "br label %then"
        assert change["artifactLocation"]["uri"].startswith("nfir:")

    def test_advisory_fix_without_replacement(self):
        f, b = _handler()
        lut = GlobalVariable("lut", ArrayType(I32, 16), kind="array")
        b.load(b.gep(lut, [b.const(I32, 3)]))
        b.ret()
        report = lint_module(_module_with(f, lut), only=["CL012"])
        sarif = sarif_report([report])
        (fixed,) = [
            r for r in sarif["runs"][0]["results"] if "fixes" in r
        ]
        (fix,) = fixed["fixes"]
        (change,) = fix["artifactChanges"]
        assert "insertedContent" not in change["replacements"][0]

    def test_rules_table_covers_all_builtins(self):
        registry = default_registry()
        sarif = sarif_report([], registry)
        ids = [r["id"] for r in sarif["runs"][0]["tool"]["driver"]["rules"]]
        assert ids == registry.codes
