"""Unit tests for the NFIR type system."""

import pytest

from repro.nfir.types import (
    ArrayType,
    IntType,
    PointerType,
    StructType,
    VOID,
    I1,
    I8,
    I16,
    I32,
    I64,
    int_type,
)


class TestIntType:
    def test_sizes(self):
        assert I8.size_bytes() == 1
        assert I16.size_bytes() == 2
        assert I32.size_bytes() == 4
        assert I64.size_bytes() == 8

    def test_i1_occupies_one_byte(self):
        assert I1.size_bytes() == 1

    def test_unsupported_width_rejected(self):
        with pytest.raises(ValueError):
            IntType(13)

    def test_wrap(self):
        assert I8.wrap(256) == 0
        assert I8.wrap(257) == 1
        assert I8.wrap(-1) == 255
        assert I32.wrap(2**32 + 5) == 5

    def test_to_signed(self):
        assert I8.to_signed(255) == -1
        assert I8.to_signed(127) == 127
        assert I8.to_signed(128) == -128
        assert I16.to_signed(0x8000) == -32768

    def test_max_unsigned(self):
        assert I8.max_unsigned() == 255
        assert I1.max_unsigned() == 1

    def test_interning(self):
        assert int_type(32) is I32
        assert IntType(32) == I32

    def test_str(self):
        assert str(I32) == "i32"


class TestCompositeTypes:
    def test_pointer(self):
        p = PointerType(I32)
        assert p.size_bytes() == 8
        assert p.is_pointer
        assert str(p) == "i32*"

    def test_nested_pointer_str(self):
        assert str(PointerType(PointerType(I8))) == "i8**"

    def test_array(self):
        a = ArrayType(I32, 16)
        assert a.size_bytes() == 64
        assert str(a) == "[16 x i32]"

    def test_struct_layout_is_packed(self):
        st = StructType("flow", (("a", I32), ("b", I16), ("c", I8)))
        assert st.size_bytes() == 7
        assert st.field_offset("a") == 0
        assert st.field_offset("b") == 4
        assert st.field_offset("c") == 6

    def test_struct_field_lookup(self):
        st = StructType("flow", (("a", I32), ("b", I16)))
        assert st.field_index("b") == 1
        assert st.field_type("b") == I16
        with pytest.raises(KeyError):
            st.field_offset("missing")

    def test_nested_struct_size(self):
        inner = StructType("k", (("x", I32),))
        outer = StructType("e", (("tag", I8), ("key", inner)))
        assert outer.size_bytes() == 5

    def test_void(self):
        assert VOID.is_void
        assert VOID.size_bytes() == 0

    def test_aggregate_flags(self):
        assert StructType("s", ()).is_aggregate
        assert ArrayType(I8, 4).is_aggregate
        assert not I32.is_aggregate
