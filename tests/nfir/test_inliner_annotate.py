"""Inliner and annotation-pass tests."""

import pytest

from repro.click.elements import build_element
from repro.click.frontend import lower_element
from repro.nfir import (
    Function,
    IRBuilder,
    Module,
    VOID,
    I32,
    annotate_module,
    inline_internal_calls,
    verify_module,
)
from repro.nfir.annotate import build_alloca_points_to
from repro.nfir.inliner import InlineError
from repro.nfir.instructions import Call


def module_with_helper(ret_in_branch: bool = False):
    m = Module("m")
    helper = m.add_function(Function("double", [("x", I32)], I32))
    hb = helper.add_block("entry")
    b = IRBuilder(helper, hb)
    if ret_in_branch:
        t = helper.add_block("t")
        f_ = helper.add_block("f")
        cond = b.icmp("ult", helper.args[0], b.const(I32, 10))
        b.cond_br(cond, t, f_)
        b.position_at_end(t)
        b.ret(b.add(helper.args[0], helper.args[0]))
        b.position_at_end(f_)
        b.ret(b.const(I32, 0))
    else:
        b.ret(b.add(helper.args[0], helper.args[0]))

    main = m.add_function(Function("pkt_handler", [], VOID))
    mb = main.add_block("entry")
    b = IRBuilder(main, mb)
    slot = b.alloca(I32)
    result = b.call("double", [b.const(I32, 21)], I32, kind="internal")
    b.store(result, slot)
    b.ret()
    return m


class TestInliner:
    def test_simple_inline(self):
        m = module_with_helper()
        count = inline_internal_calls(m)
        assert count == 1
        verify_module(m)
        calls = [
            i for i in m.handler.instructions()
            if isinstance(i, Call) and i.kind == "internal"
        ]
        assert not calls

    def test_multi_return_inline(self):
        m = module_with_helper(ret_in_branch=True)
        inline_internal_calls(m)
        verify_module(m)

    def test_inline_preserves_semantics(self):
        from repro.click.interp import Interpreter
        from repro.click.packet import Packet

        m = module_with_helper(ret_in_branch=True)
        inline_internal_calls(m)
        # 21 >= 10 -> returns 0; just check it runs without error.
        interp = Interpreter(m)
        interp.run_packet(Packet(ip={}, tcp={}))

    def test_recursion_rejected(self):
        m = Module("m")
        f = m.add_function(Function("pkt_handler", [], VOID))
        entry = f.add_block("entry")
        b = IRBuilder(f, entry)
        b.call("pkt_handler", [], VOID, kind="internal")
        b.ret()
        with pytest.raises(InlineError):
            inline_internal_calls(m)

    def test_api_calls_not_inlined(self):
        element = build_element("mininat")
        m = lower_element(element, inline=True)
        api_calls = [
            i for i in m.handler.instructions()
            if isinstance(i, Call) and i.kind == "api"
        ]
        assert api_calls, "framework API calls must survive inlining"

    def test_helpers_fully_inlined_in_library(self, lowered_library):
        for name, module in lowered_library.items():
            internal = [
                i for i in module.handler.instructions()
                if isinstance(i, Call) and i.kind == "internal"
            ]
            assert not internal, f"{name} has residual internal calls"


class TestAnnotation:
    def test_stateless_elements_have_no_stateful_memory(self, lowered_library):
        for name in ("anonipaddr", "tcpack", "udpipencap", "forcetcp", "tcpresp"):
            ann = annotate_module(lowered_library[name])
            assert ann.n_mem_stateful == 0, name
            assert not ann.stateful

    def test_stateful_elements_touch_state(self, lowered_library):
        for name in ("aggcounter", "mazunat", "cmsketch", "heavyhitter"):
            ann = annotate_module(lowered_library[name])
            assert ann.n_mem_stateful > 0, name
            assert ann.stateful

    def test_api_set_matches_element(self, lowered_library):
        ann = annotate_module(lowered_library["mininat"])
        assert "ip_header" in ann.api_set
        assert "hashmap_find" in ann.api_set
        assert "send" in ann.api_set

    def test_header_loads_are_packet_memory(self, lowered_library):
        ann = annotate_module(lowered_library["tcpack"])
        assert ann.n_mem_packet > 0

    def test_stateful_access_attribution(self, lowered_library):
        ann = annotate_module(lowered_library["aggcounter"])
        touched = {a.global_name for b in ann.blocks for a in b.stateful_accesses}
        assert "pkt_count" in touched
        assert "total_pkts" in touched

    def test_hashmap_value_pointer_is_stateful(self, lowered_library):
        # Writes through the pointer returned by hashmap_find must be
        # attributed to the map (points-to via call meta).
        ann = annotate_module(lowered_library["udpcount"])
        touched = {a.global_name for b in ann.blocks for a in b.stateful_accesses}
        assert "flow_table" in touched

    def test_points_to_map(self, lowered_library):
        handler = lowered_library["mininat"].handler
        alloca_map = build_alloca_points_to(handler)
        assert alloca_map, "mininat has pointer locals"
        # The `ip` header variable must resolve to packet space.
        from repro.nfir.instructions import Alloca

        ip_slots = [
            i for i in handler.instructions()
            if isinstance(i, Alloca) and i.name and i.name.startswith("ip.")
        ]
        assert ip_slots
        assert alloca_map[id(ip_slots[0])] == "packet"

    def test_category_totals_add_up(self, lowered_library):
        module = lowered_library["firewall"]
        ann = annotate_module(module)
        n_instrs = sum(len(b.instructions) for b in ann.blocks)
        by_counts = sum(sum(b.counts.values()) for b in ann.blocks)
        assert n_instrs == by_counts
