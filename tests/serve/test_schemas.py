"""Wire schemas: strict request parsing, round-trips, and the one
response envelope both transports share."""

import json

import pytest

from repro.errors import ClaraError, InvalidWorkloadError, UnknownElementError
from repro.serve.schemas import (
    REQUEST_KINDS,
    WIRE_SCHEMA,
    AnalyzeRequest,
    ColocationRequest,
    LintRequest,
    dump_envelope,
    envelope,
    error_envelope,
    request_from_dict,
    workload_from_dict,
    workload_to_dict,
)
from repro.workload.spec import WorkloadSpec


class TestWorkloadWire:
    def test_round_trip(self):
        spec = WorkloadSpec(name="w", n_flows=64, packet_bytes=128,
                            zipf_alpha=1.2, udp_fraction=1.0, n_packets=50)
        assert workload_from_dict(workload_to_dict(spec)) == spec

    def test_empty_dict_is_default_spec(self):
        assert workload_from_dict({}) == WorkloadSpec()

    def test_unknown_field_rejected_with_known_list(self):
        with pytest.raises(InvalidWorkloadError, match="n_flowz"):
            workload_from_dict({"n_flowz": 10})

    def test_non_object_rejected(self):
        with pytest.raises(InvalidWorkloadError, match="JSON object"):
            workload_from_dict([1, 2])

    def test_spec_validation_still_applies(self):
        with pytest.raises(InvalidWorkloadError):
            workload_from_dict({"n_flows": 0})


class TestAnalyzeRequest:
    def test_round_trip(self):
        req = AnalyzeRequest(
            element="aggcounter",
            workload=WorkloadSpec(name="w", n_packets=40),
            trace_seed=7,
        )
        wire = req.to_dict()
        assert wire["schema"] == WIRE_SCHEMA
        assert wire["kind"] == "analyze_request"
        assert AnalyzeRequest.from_dict(wire) == req
        assert AnalyzeRequest.from_dict(json.loads(json.dumps(wire))) == req

    def test_header_is_optional(self):
        req = AnalyzeRequest.from_dict({"element": "aggcounter"})
        assert req.element == "aggcounter"
        assert req.workload == WorkloadSpec()
        assert req.trace_seed == 0

    def test_missing_element_rejected(self):
        with pytest.raises(ClaraError, match="element"):
            AnalyzeRequest.from_dict({})

    def test_unknown_field_rejected(self):
        with pytest.raises(ClaraError, match="wlrkload"):
            AnalyzeRequest.from_dict(
                {"element": "aggcounter", "wlrkload": {}}
            )

    def test_future_schema_rejected(self):
        with pytest.raises(ClaraError, match="wire schema"):
            AnalyzeRequest.from_dict(
                {"schema": WIRE_SCHEMA + 1, "element": "aggcounter"}
            )

    def test_wrong_kind_rejected(self):
        with pytest.raises(ClaraError, match="expected kind"):
            AnalyzeRequest.from_dict(
                {"kind": "lint_request", "element": "aggcounter"}
            )

    def test_target_round_trips(self):
        req = AnalyzeRequest(element="aggcounter", target="dpu-offpath")
        wire = req.to_dict()
        assert wire["target"] == "dpu-offpath"
        assert AnalyzeRequest.from_dict(wire) == req

    def test_target_defaults_to_none(self):
        assert AnalyzeRequest.from_dict(
            {"element": "aggcounter"}
        ).target is None

    def test_unknown_target_rejected_at_parse_time(self):
        from repro.errors import UnknownTargetError

        with pytest.raises(UnknownTargetError, match="no-such-nic"):
            AnalyzeRequest.from_dict(
                {"element": "aggcounter", "target": "no-such-nic"}
            )

    def test_non_string_target_rejected(self):
        with pytest.raises(ClaraError, match="must be a string"):
            AnalyzeRequest.from_dict(
                {"element": "aggcounter", "target": 7}
            )


class TestLintRequest:
    def test_round_trip(self):
        req = LintRequest(elements=("aggcounter",), only=("CL007",),
                          disable=None)
        assert LintRequest.from_dict(req.to_dict()) == req

    def test_defaults_mean_whole_corpus(self):
        req = LintRequest.from_dict({})
        assert req.elements is None and req.only is None \
            and req.disable is None

    def test_non_string_lists_rejected(self):
        with pytest.raises(ClaraError, match="list of strings"):
            LintRequest.from_dict({"elements": "aggcounter"})
        with pytest.raises(ClaraError, match="list of strings"):
            LintRequest.from_dict({"only": [7]})

    def test_target_round_trips(self):
        req = LintRequest(elements=("aggcounter",), target="dpu-offpath")
        assert LintRequest.from_dict(req.to_dict()) == req

    def test_unknown_target_rejected(self):
        from repro.errors import UnknownTargetError

        with pytest.raises(UnknownTargetError):
            LintRequest.from_dict({"target": "no-such-nic"})

    def test_baseline_fingerprints_round_trip(self):
        req = LintRequest(
            elements=("aggcounter",),
            baseline=("a" * 16, "b" * 16),
        )
        wire = req.to_dict()
        assert wire["baseline"] == ["a" * 16, "b" * 16]
        assert LintRequest.from_dict(wire) == req
        assert LintRequest.from_dict({}).baseline is None

    def test_non_string_baseline_rejected(self):
        with pytest.raises(ClaraError, match="list of strings"):
            LintRequest.from_dict({"baseline": [12345]})


class TestLintRunPayload:
    def _report(self):
        from repro.nfir import Function, I32, IRBuilder, Module
        from repro.nfir.analysis import lint_module

        module = Module("fixture")
        f = Function("pkt_handler")
        b = IRBuilder(f, f.add_block("entry"))
        b.binop("sdiv", b.const(I32, 8), b.const(I32, 3))
        b.ret()
        module.add_function(f)
        return lint_module(module, only=["CL001"])

    def test_counters_present_and_deterministic(self):
        from repro.serve.schemas import lint_run_payload

        report = self._report()
        payload = lint_run_payload([report], target="nfp-4000")
        assert payload["n_errors"] == 0
        assert payload["n_warnings"] == 1
        assert payload["n_suppressed"] == 0
        assert payload["n_baselined"] == 0
        # Run-varying cache counters must never leak into the payload:
        # the CLI and the server promise byte-identical envelopes.
        assert "cache" not in payload

    def test_stats_feed_the_baselined_counter(self):
        from repro.serve.schemas import lint_run_payload

        payload = lint_run_payload(
            [self._report()],
            target="nfp-4000",
            stats={"cache": "on", "hits": 3, "n_baselined": 2},
        )
        assert payload["n_baselined"] == 2
        assert "cache" not in payload


class TestColocationRequest:
    def test_round_trip(self):
        req = ColocationRequest(
            elements=("aggcounter", "udpcount"),
            workload=WorkloadSpec(name="w", n_packets=40),
        )
        assert ColocationRequest.from_dict(req.to_dict()) == req

    def test_fewer_than_two_elements_rejected(self):
        with pytest.raises(ClaraError, match="at least two"):
            ColocationRequest(elements=("solo",))
        with pytest.raises(ClaraError, match="at least two"):
            ColocationRequest.from_dict({"elements": ["solo"]})

    def test_missing_elements_rejected(self):
        with pytest.raises(ClaraError, match="elements"):
            ColocationRequest.from_dict({})


class TestDispatch:
    def test_kind_routes_to_the_right_class(self):
        req = request_from_dict(
            {"kind": "analyze_request", "element": "aggcounter"}
        )
        assert isinstance(req, AnalyzeRequest)
        req = request_from_dict({"kind": "lint_request"})
        assert isinstance(req, LintRequest)

    def test_unknown_kind_lists_known_ones(self):
        with pytest.raises(ClaraError, match="analyze_request"):
            request_from_dict({"kind": "mystery"})

    def test_request_kinds_cover_all_classes(self):
        assert sorted(REQUEST_KINDS) == [
            "analyze_request", "colocation_request", "lint_request",
        ]


class TestEnvelope:
    def test_success_shape(self):
        env = envelope("analysis_result", {"x": 1})
        assert env == {
            "schema": WIRE_SCHEMA,
            "kind": "analysis_result",
            "request_id": None,
            "result": {"x": 1},
            "error": None,
        }

    def test_request_id_stamped_from_ambient_context(self):
        from repro.obs import RequestContext, use_request

        with use_request(RequestContext(request_id="abc123")):
            env = envelope("health", {"ready": True})
        assert env["request_id"] == "abc123"
        assert envelope("health", {"ready": True})["request_id"] is None

    def test_error_shape_carries_typed_facts(self):
        env = error_envelope(UnknownElementError("unknown element 'nope'"))
        assert env["result"] is None
        assert env["error"] == {
            "type": "UnknownElementError",
            "message": "unknown element 'nope'",
            "exit_code": UnknownElementError.exit_code,
            "http_status": 404,
        }

    def test_dump_is_parseable_and_stable(self):
        env = envelope("health", {"ready": True})
        text = dump_envelope(env)
        assert json.loads(text) == env
        assert text == dump_envelope(env)
        assert not text.endswith("\n")
