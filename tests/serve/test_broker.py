"""The batching inference broker: concurrent calls merge into single
model invocations without changing any caller's result."""

import threading

import numpy as np
import pytest

from repro.errors import ClaraError
from repro.serve.broker import PredictBroker


def row_lengths(sequences):
    """A deterministic stand-in for the model: one row per sequence."""
    return np.array([float(len(seq)) for seq in sequences])


class CountingPredict:
    def __init__(self, fn=row_lengths, fail=False):
        self.fn = fn
        self.fail = fail
        self.calls = 0
        self.rows = 0
        self._lock = threading.Lock()

    def __call__(self, sequences):
        with self._lock:
            self.calls += 1
            self.rows += len(sequences)
        if self.fail:
            raise RuntimeError("model exploded")
        return self.fn(sequences)


class TestBatching:
    def test_single_submit_round_trips(self):
        predict = CountingPredict()
        with PredictBroker(predict, window_s=0.0) as broker:
            out = broker.submit([["a", "b"], ["c"]])
        np.testing.assert_array_equal(out, [2.0, 1.0])
        assert predict.calls == 1

    def test_concurrent_submits_merge_into_fewer_calls(self):
        predict = CountingPredict()
        n_threads = 6
        barrier = threading.Barrier(n_threads)
        results = {}

        def worker(i):
            barrier.wait()
            results[i] = broker.submit([["tok"] * (i + 1)])

        with PredictBroker(predict, window_s=0.1) as broker:
            threads = [
                threading.Thread(target=worker, args=(i,))
                for i in range(n_threads)
            ]
            for t in threads:
                t.start()
            for t in threads:
                t.join()

        # Every caller got exactly its own row back...
        for i in range(n_threads):
            np.testing.assert_array_equal(results[i], [float(i + 1)])
        # ...and the model ran far fewer times than it was called.
        assert predict.rows == n_threads
        assert predict.calls < n_threads
        assert broker.n_jobs == n_threads
        assert broker.n_batches == predict.calls
        assert broker.n_batches < broker.n_jobs

    def test_batched_results_equal_direct(self):
        rng = np.random.default_rng(5)
        sequences = [
            [f"op{rng.integers(8)}" for _ in range(int(rng.integers(1, 6)))]
            for _ in range(10)
        ]
        direct = row_lengths(sequences)
        barrier = threading.Barrier(len(sequences))
        out = [None] * len(sequences)

        def worker(i):
            barrier.wait()
            out[i] = broker.submit([sequences[i]])

        with PredictBroker(CountingPredict(), window_s=0.05) as broker:
            threads = [
                threading.Thread(target=worker, args=(i,))
                for i in range(len(sequences))
            ]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
        merged = np.concatenate(out)
        np.testing.assert_array_equal(merged, direct)

    def test_max_batch_bounds_merge_size(self):
        predict = CountingPredict()
        barrier = threading.Barrier(8)
        with PredictBroker(predict, window_s=0.1, max_batch=2) as broker:
            threads = [
                threading.Thread(
                    target=lambda: (barrier.wait(),
                                    broker.submit([["x"]]))
                )
                for _ in range(8)
            ]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
            assert broker.n_jobs == 8
            assert broker.n_batches >= 4  # no batch merged more than 2


class TestErrors:
    def test_model_error_propagates_to_every_caller(self):
        predict = CountingPredict(fail=True)
        barrier = threading.Barrier(3)
        errors = []

        def worker():
            barrier.wait()
            try:
                broker.submit([["x"]])
            except RuntimeError as exc:
                errors.append(str(exc))

        with PredictBroker(predict, window_s=0.05) as broker:
            threads = [threading.Thread(target=worker) for _ in range(3)]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
        assert errors == ["model exploded"] * 3

    def test_row_count_mismatch_is_a_clara_error(self):
        with PredictBroker(lambda seqs: np.zeros(1), window_s=0.0) as broker:
            with pytest.raises(ClaraError, match="rows"):
                broker.submit([["a"], ["b"]])

    def test_bad_config_rejected(self):
        with pytest.raises(ClaraError, match="max_batch"):
            PredictBroker(row_lengths, max_batch=0)
        with pytest.raises(ClaraError, match="window_s"):
            PredictBroker(row_lengths, window_s=-1)

    def test_submit_after_close_raises(self):
        broker = PredictBroker(row_lengths, window_s=0.0)
        broker.close()
        with pytest.raises(ClaraError, match="closed"):
            broker.submit([["x"]])
        broker.close()  # idempotent


class TestPredictorWiring:
    def test_hook_routes_predict_sequences_and_close_restores(
        self, trained_predictor
    ):
        sequences = [["i32.add", "i32.load"], ["i32.store"]]
        direct = trained_predictor.predict_direct(sequences)

        broker = PredictBroker.for_predictor(
            trained_predictor, window_s=0.0
        )
        try:
            hooked = trained_predictor.predict_sequences(sequences)
            np.testing.assert_array_equal(hooked, direct)
            assert broker.n_jobs == 1
        finally:
            broker.close()
        # The hook is gone: predict_sequences no longer feeds the broker.
        after = trained_predictor.predict_sequences(sequences)
        np.testing.assert_array_equal(after, direct)
        assert broker.n_jobs == 1
