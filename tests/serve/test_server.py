"""End-to-end daemon tests: an in-process ``ClaraServer`` on an
ephemeral port, driven over real HTTP with urllib.

The load-bearing assertions: CLI ``--json`` output and server response
bodies are byte-identical (one serializer, two transports), concurrent
batched inference returns exactly the sequential answers, and every
``ClaraError`` maps to its documented HTTP status.
"""

import json
import threading
import urllib.error
import urllib.request

import pytest

from repro.cli import main
from repro.serve import ServeConfig, build_server
from repro.serve.schemas import WIRE_SCHEMA

#: the wire form of the CLI's default workload at ``--packets 60``
#: (see ``_workload_from_args``), for byte-parity tests.
CLI_WORKLOAD_60 = {
    "name": "cli",
    "n_flows": 10_000,
    "packet_bytes": 256,
    "zipf_alpha": 1.0,
    "udp_fraction": 0.0,
    "n_packets": 60,
}


def http(server, path, payload=None, raw=None, method=None):
    """``(status, headers, body_bytes)`` for one request; HTTP errors
    are returned, not raised."""
    if raw is None and payload is not None:
        raw = json.dumps(payload).encode("utf-8")
    req = urllib.request.Request(
        server.url(path), data=raw, method=method,
        headers={"Content-Type": "application/json"} if raw else {},
    )
    try:
        with urllib.request.urlopen(req, timeout=30) as resp:
            return resp.status, dict(resp.headers), resp.read()
    except urllib.error.HTTPError as err:
        return err.code, dict(err.headers), err.read()


def body_json(body):
    return json.loads(body.decode("utf-8"))


@pytest.fixture(scope="module")
def server(clara_artifacts):
    from repro.core import Clara

    clara = Clara.load(clara_artifacts["artifact"])
    config = ServeConfig(
        port=0,  # ephemeral
        batch_window_ms=5.0,
        colocation_programs=6,
        colocation_groups=4,
    )
    srv = build_server(clara, config)
    srv.start()
    yield srv
    srv.shutdown()


class TestHealthAndMetrics:
    def test_healthz_reports_ready(self, server):
        status, _headers, body = http(server, "/healthz")
        assert status == 200
        env = body_json(body)
        assert env["schema"] == WIRE_SCHEMA
        assert env["kind"] == "health"
        result = env["result"]
        assert result["ready"] is True and result["trained"] is True
        assert result["wire_schema"] == WIRE_SCHEMA
        assert "analyze_request" in result["request_kinds"]
        assert result["batching"]["max_batch"] >= 1
        targets = result["targets"]
        assert targets["default"] == "nfp-4000"
        assert "dpu-offpath" in targets["available"]
        assert targets["warm"] == ["nfp-4000"]

    def test_healthz_cold_clara_is_503(self):
        from repro.core import Clara

        srv = build_server(Clara(seed=0), ServeConfig(port=0))
        srv.start()
        try:
            status, _headers, body = http(srv, "/healthz")
            assert status == 503
            assert body_json(body)["result"]["ready"] is False
        finally:
            srv.shutdown()

    def test_metrics_is_prometheus_text(self, server):
        # Generate at least one instrumented request first.
        http(server, "/healthz")
        status, headers, body = http(server, "/metrics")
        assert status == 200
        assert headers["Content-Type"].startswith("text/plain")
        text = body.decode("utf-8")
        assert "http_requests_total" in text
        assert "http_request_seconds" in text
        assert "http_inflight_requests" in text


class TestCliParity:
    def test_analyze_body_matches_cli_json_bytes(
        self, server, clara_artifacts, capsys
    ):
        assert main(["analyze", "aggcounter", "--packets", "60", "--json",
                     "--load", str(clara_artifacts["artifact"])]) == 0
        cli_bytes = capsys.readouterr().out.encode("utf-8")

        status, _headers, body = http(server, "/v1/analyze", payload={
            "schema": WIRE_SCHEMA,
            "kind": "analyze_request",
            "element": "aggcounter",
            "workload": CLI_WORKLOAD_60,
        })
        assert status == 200
        assert body == cli_bytes

    def test_lint_body_matches_cli_json_bytes(self, server, capsys):
        main(["lint", "aggcounter", "--json"])
        cli_bytes = capsys.readouterr().out.encode("utf-8")

        status, _headers, body = http(
            server, "/v1/lint", payload={"elements": ["aggcounter"]}
        )
        assert status == 200
        assert body == cli_bytes
        env = body_json(body)
        assert env["kind"] == "lint_run"
        assert env["result"]["reports"][0]["module"] == "aggcounter"

    def test_dpu_lint_body_matches_cli_json_bytes(self, server, capsys):
        main(["lint", "loadbalancer", "--target", "dpu-offpath", "--json"])
        cli_bytes = capsys.readouterr().out.encode("utf-8")

        status, _headers, body = http(server, "/v1/lint", payload={
            "elements": ["loadbalancer"], "target": "dpu-offpath",
        })
        assert status == 200
        assert body == cli_bytes


class TestAnalyze:
    def test_concurrent_analyzes_equal_sequential(self, server):
        elements = ["aggcounter", "udpcount", "iplookup"]
        payloads = [
            {"element": name, "workload": {"name": "t", "n_packets": 50}}
            for name in elements
        ]
        sequential = [
            body_json(http(server, "/v1/analyze", payload=p)[2])
            for p in payloads
        ]

        before = server.service.broker.n_jobs
        barrier = threading.Barrier(len(payloads))
        concurrent = [None] * len(payloads)

        def worker(i):
            barrier.wait()
            concurrent[i] = body_json(
                http(server, "/v1/analyze", payload=payloads[i])[2]
            )

        threads = [
            threading.Thread(target=worker, args=(i,))
            for i in range(len(payloads))
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()

        # Batch composition must not change any answer.
        assert concurrent == sequential
        # All three went through the broker.
        assert server.service.broker.n_jobs >= before + len(payloads)

    def test_trace_seed_is_honored(self, server):
        def ask(seed):
            return body_json(http(server, "/v1/analyze", payload={
                "element": "aggcounter",
                "workload": {"name": "t", "n_packets": 50},
                "trace_seed": seed,
            })[2])

        assert ask(3) == ask(3)  # deterministic per seed


class TestColocation:
    def test_ranking_covers_all_pairs(self, server):
        elements = ["aggcounter", "udpcount", "iplookup"]
        status, _headers, body = http(server, "/v1/colocation", payload={
            "elements": elements,
            "workload": {"name": "t", "n_packets": 50},
        })
        assert status == 200
        env = body_json(body)
        assert env["kind"] == "colocation_ranking"
        pairs = env["result"]["pairs"]
        assert len(pairs) == 3  # C(3, 2)
        names = {(p["a"]["name"], p["b"]["name"]) for p in pairs}
        assert len(names) == 3
        assert [p["rank"] for p in pairs] == [0, 1, 2]

    def test_lazy_ranker_trains_once(self, server):
        status, _headers, body = http(server, "/healthz")
        assert status == 200
        assert body_json(body)["result"]["colocation_trained"] is True
        ranker = server.service.clara.colocation
        http(server, "/v1/colocation", payload={
            "elements": ["aggcounter", "udpcount"],
            "workload": {"name": "t", "n_packets": 50},
        })
        assert server.service.clara.colocation is ranker


class TestErrorMapping:
    def test_unknown_element_is_404(self, server):
        status, _headers, body = http(
            server, "/v1/analyze", payload={"element": "nope"}
        )
        assert status == 404
        error = body_json(body)["error"]
        assert error["type"] == "UnknownElementError"
        assert error["http_status"] == 404

    def test_invalid_workload_is_400(self, server):
        status, _headers, body = http(server, "/v1/analyze", payload={
            "element": "aggcounter", "workload": {"n_flows": 0},
        })
        assert status == 400
        assert body_json(body)["error"]["type"] == "InvalidWorkloadError"

    def test_unknown_workload_field_is_400(self, server):
        status, _headers, body = http(server, "/v1/analyze", payload={
            "element": "aggcounter", "workload": {"n_flowz": 7},
        })
        assert status == 400
        assert "n_flowz" in body_json(body)["error"]["message"]

    def test_bad_json_is_400(self, server):
        status, _headers, body = http(
            server, "/v1/analyze", raw=b"this is not json"
        )
        assert status == 400
        assert "JSON" in body_json(body)["error"]["message"]

    def test_empty_body_is_400(self, server):
        status, _headers, body = http(
            server, "/v1/analyze", raw=b"", method="POST"
        )
        assert status == 400
        assert "empty" in body_json(body)["error"]["message"]

    def test_unknown_request_field_is_400(self, server):
        status, _headers, body = http(server, "/v1/analyze", payload={
            "element": "aggcounter", "elemnt_typo": 1,
        })
        assert status == 400
        assert "elemnt_typo" in body_json(body)["error"]["message"]

    def test_mismatched_kind_is_400(self, server):
        status, _headers, body = http(server, "/v1/analyze", payload={
            "kind": "lint_request", "element": "aggcounter",
        })
        assert status == 400
        assert "expected kind" in body_json(body)["error"]["message"]

    def test_unknown_paths_are_404(self, server):
        for path, raw in (("/nope", None), ("/v1/nope", b"{}")):
            status, _headers, body = http(server, path, raw=raw)
            assert status == 404
            assert body_json(body)["error"]["type"] == "ClaraError"

    def test_unknown_target_is_404(self, server):
        for path, payload in (
            ("/v1/analyze", {"element": "aggcounter",
                             "target": "no-such-nic"}),
            ("/v1/lint", {"target": "no-such-nic"}),
        ):
            status, _headers, body = http(server, path, payload=payload)
            assert status == 404
            error = body_json(body)["error"]
            assert error["type"] == "UnknownTargetError"
            assert "no-such-nic" in error["message"]

    def test_bad_lint_rule_is_400_with_known_codes(self, server):
        status, _headers, body = http(
            server, "/v1/lint", payload={"only": ["CL999"]}
        )
        assert status == 400
        assert "CL001" in body_json(body)["error"]["message"]
