"""End-to-end daemon tests: an in-process ``ClaraServer`` on an
ephemeral port, driven over real HTTP with urllib.

The load-bearing assertions: CLI ``--json`` output and server response
bodies are byte-identical (one serializer, two transports), concurrent
batched inference returns exactly the sequential answers, and every
``ClaraError`` maps to its documented HTTP status.
"""

import json
import threading
import urllib.error
import urllib.request

import pytest

from repro.cli import main
from repro.serve import ServeConfig, build_server
from repro.serve.schemas import WIRE_SCHEMA

#: the wire form of the CLI's default workload at ``--packets 60``
#: (see ``_workload_from_args``), for byte-parity tests.
CLI_WORKLOAD_60 = {
    "name": "cli",
    "n_flows": 10_000,
    "packet_bytes": 256,
    "zipf_alpha": 1.0,
    "udp_fraction": 0.0,
    "n_packets": 60,
}


def http(server, path, payload=None, raw=None, method=None, headers=None):
    """``(status, headers, body_bytes)`` for one request; HTTP errors
    are returned, not raised."""
    if raw is None and payload is not None:
        raw = json.dumps(payload).encode("utf-8")
    all_headers = {"Content-Type": "application/json"} if raw else {}
    all_headers.update(headers or {})
    req = urllib.request.Request(
        server.url(path), data=raw, method=method, headers=all_headers,
    )
    try:
        with urllib.request.urlopen(req, timeout=30) as resp:
            return resp.status, dict(resp.headers), resp.read()
    except urllib.error.HTTPError as err:
        return err.code, dict(err.headers), err.read()


def body_json(body):
    return json.loads(body.decode("utf-8"))


def poll_journal(timeout_s=5.0, **filters):
    """Journal events matching ``filters``, polling briefly: finish and
    slow-capture events are emitted *after* the response is sent, so an
    immediate read can race the handler thread."""
    import time

    from repro.obs.events import get_journal

    deadline = time.monotonic() + timeout_s
    events = get_journal().snapshot(**filters)
    while not events and time.monotonic() < deadline:
        time.sleep(0.02)
        events = get_journal().snapshot(**filters)
    return events


@pytest.fixture(scope="module")
def server(clara_artifacts):
    from repro.core import Clara

    clara = Clara.load(clara_artifacts["artifact"])
    config = ServeConfig(
        port=0,  # ephemeral
        batch_window_ms=5.0,
        colocation_programs=6,
        colocation_groups=4,
    )
    srv = build_server(clara, config)
    srv.start()
    yield srv
    srv.shutdown()


class TestHealthAndMetrics:
    def test_healthz_reports_ready(self, server):
        status, _headers, body = http(server, "/healthz")
        assert status == 200
        env = body_json(body)
        assert env["schema"] == WIRE_SCHEMA
        assert env["kind"] == "health"
        result = env["result"]
        assert result["ready"] is True and result["trained"] is True
        assert result["wire_schema"] == WIRE_SCHEMA
        assert "analyze_request" in result["request_kinds"]
        assert result["batching"]["max_batch"] >= 1
        targets = result["targets"]
        assert targets["default"] == "nfp-4000"
        assert "dpu-offpath" in targets["available"]
        assert targets["warm"] == ["nfp-4000"]

    def test_healthz_cold_clara_is_503(self):
        from repro.core import Clara

        srv = build_server(Clara(seed=0), ServeConfig(port=0))
        srv.start()
        try:
            status, _headers, body = http(srv, "/healthz")
            assert status == 503
            assert body_json(body)["result"]["ready"] is False
        finally:
            srv.shutdown()

    def test_metrics_is_prometheus_text(self, server):
        # Generate at least one instrumented request first.
        http(server, "/healthz")
        status, headers, body = http(server, "/metrics")
        assert status == 200
        assert headers["Content-Type"].startswith("text/plain")
        text = body.decode("utf-8")
        assert "http_requests_total" in text
        assert "http_request_seconds" in text
        assert "http_inflight_requests" in text


class TestCliParity:
    """One serializer, two transports.  The envelope stamps the ambient
    request id, so parity needs both transports to carry the same one:
    the CLI's ``--request-id`` flag is the twin of the daemon's
    ``X-Clara-Request-Id`` header."""

    def test_analyze_body_matches_cli_json_bytes(
        self, server, clara_artifacts, capsys
    ):
        assert main(["analyze", "aggcounter", "--packets", "60", "--json",
                     "--request-id", "parity-1",
                     "--load", str(clara_artifacts["artifact"])]) == 0
        cli_bytes = capsys.readouterr().out.encode("utf-8")

        status, _headers, body = http(server, "/v1/analyze", payload={
            "schema": WIRE_SCHEMA,
            "kind": "analyze_request",
            "element": "aggcounter",
            "workload": CLI_WORKLOAD_60,
        }, headers={"X-Clara-Request-Id": "parity-1"})
        assert status == 200
        assert body == cli_bytes

    def test_lint_body_matches_cli_json_bytes(self, server, capsys):
        main(["lint", "aggcounter", "--json", "--request-id", "parity-2"])
        cli_bytes = capsys.readouterr().out.encode("utf-8")

        status, _headers, body = http(
            server, "/v1/lint", payload={"elements": ["aggcounter"]},
            headers={"X-Clara-Request-Id": "parity-2"},
        )
        assert status == 200
        assert body == cli_bytes
        env = body_json(body)
        assert env["kind"] == "lint_run"
        assert env["result"]["reports"][0]["module"] == "aggcounter"

    def test_dpu_lint_body_matches_cli_json_bytes(self, server, capsys):
        main(["lint", "loadbalancer", "--target", "dpu-offpath", "--json",
              "--request-id", "parity-3"])
        cli_bytes = capsys.readouterr().out.encode("utf-8")

        status, _headers, body = http(server, "/v1/lint", payload={
            "elements": ["loadbalancer"], "target": "dpu-offpath",
        }, headers={"X-Clara-Request-Id": "parity-3"})
        assert status == 200
        assert body == cli_bytes


class TestAnalyze:
    def test_concurrent_analyzes_equal_sequential(self, server):
        elements = ["aggcounter", "udpcount", "iplookup"]
        payloads = [
            {"element": name, "workload": {"name": "t", "n_packets": 50}}
            for name in elements
        ]
        def ask(payload):
            # Every request gets its own generated correlation id;
            # strip it so only the analysis content is compared.
            env = body_json(http(server, "/v1/analyze", payload=payload)[2])
            del env["request_id"]
            return env

        sequential = [ask(p) for p in payloads]

        before = server.service.broker.n_jobs
        barrier = threading.Barrier(len(payloads))
        concurrent = [None] * len(payloads)

        def worker(i):
            barrier.wait()
            concurrent[i] = ask(payloads[i])

        threads = [
            threading.Thread(target=worker, args=(i,))
            for i in range(len(payloads))
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()

        # Batch composition must not change any answer.
        assert concurrent == sequential
        # All three went through the broker.
        assert server.service.broker.n_jobs >= before + len(payloads)

    def test_trace_seed_is_honored(self, server):
        def ask(seed):
            env = body_json(http(server, "/v1/analyze", payload={
                "element": "aggcounter",
                "workload": {"name": "t", "n_packets": 50},
                "trace_seed": seed,
            })[2])
            del env["request_id"]  # generated fresh per request
            return env

        assert ask(3) == ask(3)  # deterministic per seed


class TestColocation:
    def test_ranking_covers_all_pairs(self, server):
        elements = ["aggcounter", "udpcount", "iplookup"]
        status, _headers, body = http(server, "/v1/colocation", payload={
            "elements": elements,
            "workload": {"name": "t", "n_packets": 50},
        })
        assert status == 200
        env = body_json(body)
        assert env["kind"] == "colocation_ranking"
        pairs = env["result"]["pairs"]
        assert len(pairs) == 3  # C(3, 2)
        names = {(p["a"]["name"], p["b"]["name"]) for p in pairs}
        assert len(names) == 3
        assert [p["rank"] for p in pairs] == [0, 1, 2]

    def test_lazy_ranker_trains_once(self, server):
        status, _headers, body = http(server, "/healthz")
        assert status == 200
        assert body_json(body)["result"]["colocation_trained"] is True
        ranker = server.service.clara.colocation
        http(server, "/v1/colocation", payload={
            "elements": ["aggcounter", "udpcount"],
            "workload": {"name": "t", "n_packets": 50},
        })
        assert server.service.clara.colocation is ranker


class TestErrorMapping:
    def test_unknown_element_is_404(self, server):
        status, _headers, body = http(
            server, "/v1/analyze", payload={"element": "nope"}
        )
        assert status == 404
        error = body_json(body)["error"]
        assert error["type"] == "UnknownElementError"
        assert error["http_status"] == 404

    def test_invalid_workload_is_400(self, server):
        status, _headers, body = http(server, "/v1/analyze", payload={
            "element": "aggcounter", "workload": {"n_flows": 0},
        })
        assert status == 400
        assert body_json(body)["error"]["type"] == "InvalidWorkloadError"

    def test_unknown_workload_field_is_400(self, server):
        status, _headers, body = http(server, "/v1/analyze", payload={
            "element": "aggcounter", "workload": {"n_flowz": 7},
        })
        assert status == 400
        assert "n_flowz" in body_json(body)["error"]["message"]

    def test_bad_json_is_400(self, server):
        status, _headers, body = http(
            server, "/v1/analyze", raw=b"this is not json"
        )
        assert status == 400
        assert "JSON" in body_json(body)["error"]["message"]

    def test_empty_body_is_400(self, server):
        status, _headers, body = http(
            server, "/v1/analyze", raw=b"", method="POST"
        )
        assert status == 400
        assert "empty" in body_json(body)["error"]["message"]

    def test_unknown_request_field_is_400(self, server):
        status, _headers, body = http(server, "/v1/analyze", payload={
            "element": "aggcounter", "elemnt_typo": 1,
        })
        assert status == 400
        assert "elemnt_typo" in body_json(body)["error"]["message"]

    def test_mismatched_kind_is_400(self, server):
        status, _headers, body = http(server, "/v1/analyze", payload={
            "kind": "lint_request", "element": "aggcounter",
        })
        assert status == 400
        assert "expected kind" in body_json(body)["error"]["message"]

    def test_unknown_paths_are_404(self, server):
        for path, raw in (("/nope", None), ("/v1/nope", b"{}")):
            status, _headers, body = http(server, path, raw=raw)
            assert status == 404
            assert body_json(body)["error"]["type"] == "ClaraError"

    def test_unknown_target_is_404(self, server):
        for path, payload in (
            ("/v1/analyze", {"element": "aggcounter",
                             "target": "no-such-nic"}),
            ("/v1/lint", {"target": "no-such-nic"}),
        ):
            status, _headers, body = http(server, path, payload=payload)
            assert status == 404
            error = body_json(body)["error"]
            assert error["type"] == "UnknownTargetError"
            assert "no-such-nic" in error["message"]

    def test_bad_lint_rule_is_400_with_known_codes(self, server):
        status, _headers, body = http(
            server, "/v1/lint", payload={"only": ["CL999"]}
        )
        assert status == 400
        assert "CL001" in body_json(body)["error"]["message"]


class TestRequestCorrelation:
    """The tentpole acceptance path: one client-supplied request id is
    echoed in the response header and envelope, stamped on journal
    events, and visible in JSON log lines."""

    def test_client_id_echoed_in_header_and_envelope(self, server):
        status, headers, body = http(
            server, "/healthz",
            headers={"X-Clara-Request-Id": "abc"},
        )
        assert status == 200
        assert headers["X-Clara-Request-Id"] == "abc"
        assert body_json(body)["request_id"] == "abc"

    def test_id_minted_when_header_absent(self, server):
        _status, headers, body = http(server, "/healthz")
        rid = headers["X-Clara-Request-Id"]
        assert len(rid) == 32
        assert body_json(body)["request_id"] == rid

    def test_hostile_header_sanitized(self, server):
        _status, headers, _body = http(
            server, "/healthz",
            headers={"X-Clara-Request-Id": "x" * 500},
        )
        assert headers["X-Clara-Request-Id"] == "x" * 128

    def test_journal_events_carry_the_id(self, server):
        from repro.obs.events import get_journal

        rid = "journal-e2e-1"
        http(server, "/v1/analyze", payload={
            "element": "aggcounter",
            "workload": {"name": "t", "n_packets": 50},
        }, headers={"X-Clara-Request-Id": rid})
        finish = poll_journal(kind="request_finish", request_id=rid)[0]
        kinds = [
            e.kind for e in get_journal().snapshot(request_id=rid)
        ]
        assert kinds[0] == "request_start"
        assert kinds[-1] == "request_finish"
        assert finish.data["endpoint"] == "/v1/analyze"
        assert finish.data["status"] == 200
        assert finish.data["duration_s"] > 0

    def test_json_log_lines_stamped_with_the_id(self, server):
        import io

        from repro import obs

        stream = io.StringIO()
        obs.configure(verbosity=2, stream=stream, fmt="json")
        try:
            http(server, "/healthz",
                 headers={"X-Clara-Request-Id": "log-e2e-1"})
        finally:
            obs.configure(verbosity=0)
        records = [
            json.loads(line) for line in stream.getvalue().splitlines()
        ]
        stamped = [r for r in records
                   if r.get("request_id") == "log-e2e-1"]
        assert stamped, records
        assert all("ts" in r and "level" in r for r in stamped)


class TestEventsEndpoint:
    def test_events_returned_with_counters(self, server):
        rid = "events-e2e-1"
        http(server, "/healthz", headers={"X-Clara-Request-Id": rid})
        poll_journal(kind="request_finish", request_id=rid)
        status, _headers, body = http(
            server, f"/v1/events?request_id={rid}"
        )
        assert status == 200
        env = body_json(body)
        assert env["kind"] == "events"
        result = env["result"]
        assert result["n_returned"] == len(result["events"]) >= 2
        assert {e["kind"] for e in result["events"]} >= {
            "request_start", "request_finish",
        }
        assert all(e["request_id"] == rid for e in result["events"])
        assert result["n_emitted"] >= result["n_returned"]
        assert "slow_request" in result["kinds"]

    def test_polling_events_is_not_journaled(self, server):
        import time

        from repro.obs.events import get_journal

        rid = "events-poller-1"
        status, headers, _body = http(
            server, "/v1/events", headers={"X-Clara-Request-Id": rid}
        )
        assert status == 200
        # Correlation still works (header echoed) but the poll itself
        # leaves no journal entries, so a steady poller cannot evict
        # the serving events it is observing.
        assert headers.get("X-Clara-Request-Id") == rid
        time.sleep(0.2)  # finish events are emitted post-response
        assert get_journal().snapshot(request_id=rid) == []

    def test_kind_filter_and_limit(self, server):
        http(server, "/healthz")
        status, _headers, body = http(
            server, "/v1/events?kind=request_finish&n=3"
        )
        assert status == 200
        events = body_json(body)["result"]["events"]
        assert 0 < len(events) <= 3
        assert all(e["kind"] == "request_finish" for e in events)

    def test_since_seq_pagination(self, server):
        status, _headers, body = http(server, "/v1/events")
        all_events = body_json(body)["result"]["events"]
        cursor = all_events[-1]["seq"]
        status, _headers, body = http(
            server, f"/v1/events?since_seq={cursor}"
        )
        newer = body_json(body)["result"]["events"]
        assert all(e["seq"] > cursor for e in newer)

    def test_unknown_kind_is_400(self, server):
        status, _headers, body = http(server, "/v1/events?kind=nope")
        assert status == 400
        assert "request_start" in body_json(body)["error"]["message"]

    def test_non_integer_since_seq_is_400(self, server):
        status, _headers, body = http(server, "/v1/events?since_seq=abc")
        assert status == 400
        assert "since_seq" in body_json(body)["error"]["message"]


class TestSloSurface:
    def test_healthz_carries_windowed_quantiles(self, server):
        http(server, "/healthz")  # at least one prior sample
        _status, _headers, body = http(server, "/healthz")
        slo = body_json(body)["result"]["slo"]
        assert slo["status"] in ("ok", "degraded")
        assert slo["window_s"] > 0
        assert set(slo["thresholds"]) == {"p99_s", "error_rate"}
        stats = slo["endpoints"]["/healthz"]
        assert stats["count"] >= 1
        assert 0 <= stats["p50_s"] <= stats["p95_s"] <= stats["p99_s"]
        assert stats["status"] in ("ok", "degraded")

    def test_metrics_has_slo_gauges_and_validates(self, server):
        from repro.obs import validate_exposition

        http(server, "/healthz")
        _status, _headers, body = http(server, "/metrics")
        text = body.decode("utf-8")
        assert validate_exposition(text) == []
        assert "slo_latency_seconds" in text
        assert 'quantile="p99"' in text
        assert "slo_degraded" in text
        assert "slo_window_requests" in text


class TestSlowRequestCapture:
    def test_span_tree_journaled_and_trace_written(self, tmp_path):
        from repro.core import Clara

        # Threshold of 1 microsecond: every request is "slow".
        srv = build_server(Clara(seed=0), ServeConfig(
            port=0, slow_request_ms=0.001,
            slow_trace_dir=str(tmp_path / "slow"),
        ))
        srv.start()
        rid = "slow-e2e-1"
        try:
            status, _headers, body = http(
                srv, "/healthz", headers={"X-Clara-Request-Id": rid}
            )
            events = poll_journal(kind="slow_request", request_id=rid)
        finally:
            srv.shutdown()
        assert len(events) == 1
        data = events[0].data
        assert data["endpoint"] == "/healthz"
        assert data["duration_s"] >= data["threshold_s"]
        # The captured forest: an http_request root stamped with the id.
        roots = data["spans"]
        assert roots and roots[0]["name"] == "http_request"
        assert roots[0]["attrs"]["request_id"] == rid
        assert roots[0]["span_id"]
        # And the Chrome trace file landed where configured.
        trace_file = data["trace_file"]
        assert trace_file and trace_file.endswith(f"slow-{rid}.trace.json")
        with open(trace_file, encoding="utf-8") as handle:
            assert json.load(handle)["traceEvents"]

    def test_hostile_request_id_cannot_escape_trace_dir(self, tmp_path):
        import os

        from repro.core import Clara

        trace_dir = tmp_path / "slow"
        srv = build_server(Clara(seed=0), ServeConfig(
            port=0, slow_request_ms=0.001,
            slow_trace_dir=str(trace_dir),
        ))
        srv.start()
        rid = "../../../../tmp/evil"
        try:
            http(srv, "/healthz", headers={"X-Clara-Request-Id": rid})
            events = poll_journal(kind="slow_request", request_id=rid)
        finally:
            srv.shutdown()
        assert len(events) == 1
        trace_file = events[0].data["trace_file"]
        assert trace_file is not None
        # The path separators were replaced, so the file landed inside
        # the configured directory — not four levels up.
        real_dir = os.path.realpath(str(trace_dir))
        assert os.path.realpath(trace_file).startswith(real_dir + os.sep)
        assert os.path.basename(trace_file) == \
            "slow-.._.._.._.._tmp_evil.trace.json"
        assert os.path.exists(trace_file)
        assert not (tmp_path / "tmp" / "evil").exists()

    def test_fast_requests_not_captured(self, server):
        from repro.obs.events import get_journal

        rid = "fast-e2e-1"
        http(server, "/healthz", headers={"X-Clara-Request-Id": rid})
        assert get_journal().snapshot(kind="slow_request",
                                      request_id=rid) == []

    def test_retrievable_over_the_wire(self, tmp_path):
        import time

        from repro.core import Clara

        srv = build_server(Clara(seed=0), ServeConfig(
            port=0, slow_request_ms=0.001,
        ))
        srv.start()
        rid = "slow-e2e-2"
        events = []
        try:
            http(srv, "/healthz", headers={"X-Clara-Request-Id": rid})
            # Capture happens after the response is sent (the duration
            # isn't known until then), so poll briefly.
            deadline = time.monotonic() + 5.0
            while time.monotonic() < deadline:
                _s, _h, body = http(
                    srv, f"/v1/events?kind=slow_request&request_id={rid}"
                )
                events = body_json(body)["result"]["events"]
                if events:
                    break
                time.sleep(0.02)
        finally:
            srv.shutdown()
        assert len(events) == 1
        assert events[0]["data"]["spans"]


class TestEventsCli:
    def test_json_output_matches_http_body_bytes(self, server, capsys):
        http(server, "/healthz")
        query = "/v1/events?kind=request_finish&n=2"
        _s, _h, body = http(server, query)

        assert main(["events", "--url", server.url().rstrip("/"),
                     "--kind", "request_finish", "-n", "2",
                     "--json"]) == 0
        cli_out = capsys.readouterr().out.encode("utf-8")
        # Same envelope serializer; the CLI relays the body verbatim
        # (modulo its own request adding events between the two reads,
        # so compare shapes, not the event list).
        cli_env = json.loads(cli_out)
        http_env = body_json(body)
        assert cli_env["kind"] == http_env["kind"] == "events"
        assert cli_env["schema"] == http_env["schema"]
        assert set(cli_env["result"]) == set(http_env["result"])

    def test_table_output_and_jsonl_export(self, server, capsys, tmp_path):
        rid = "cli-events-1"
        http(server, "/healthz", headers={"X-Clara-Request-Id": rid})
        poll_journal(kind="request_finish", request_id=rid)
        out_path = tmp_path / "events.jsonl"
        assert main(["events", "--url", server.url().rstrip("/"),
                     "--for-request", rid,
                     "--jsonl", str(out_path)]) == 0
        out = capsys.readouterr().out
        assert "request_start" in out and "request_finish" in out
        assert rid in out
        lines = out_path.read_text().splitlines()
        assert len(lines) >= 2
        assert all(json.loads(line)["request_id"] == rid
                   for line in lines)

    def test_unreachable_daemon_is_clara_error(self, capsys):
        # Port 9 (discard) is never a clara daemon.
        code = main(["events", "--url", "http://127.0.0.1:9",
                     "--timeout", "0.5"])
        assert code != 0
        assert "cannot reach" in capsys.readouterr().err

    def test_bad_kind_surfaces_daemon_message(self, server, capsys):
        code = main(["events", "--url", server.url().rstrip("/"),
                     "--kind", "nope"])
        assert code != 0
        err = capsys.readouterr().err
        assert "HTTP 400" in err and "unknown event kind" in err
