"""Synthesis engine tests: AST statistics, guided generation, Table-1
fidelity property (guided beats baseline)."""

from collections import Counter

import numpy as np
import pytest

from repro.click.ast import walk_element
from repro.click.frontend import lower_element
from repro.click.interp import Interpreter
from repro.ml.encoding import block_tokens
from repro.ml.metrics import jensen_shannon, variational_distance
from repro.nfir import verify_module
from repro.nfir.annotate import annotate_module
from repro.synthesis import ClickGen, baseline_stats, extract_stats
from repro.workload import generate_trace
from repro.workload.spec import WorkloadSpec


@pytest.fixture(scope="module")
def corpus_stats(library_elements):
    return extract_stats(library_elements)


class TestStats:
    def test_statement_kinds_counted(self, corpus_stats):
        assert corpus_stats.stmt_kinds["AssignStmt"] > 0
        assert corpus_stats.stmt_kinds["IfStmt"] > 0

    def test_operator_distribution_realistic(self, corpus_stats):
        probs = corpus_stats.probabilities("bin_ops")
        # Real NFs are add/and/xor heavy, multiply-light.
        assert probs.get("+", 0) > probs.get("*", 0)

    def test_handler_lengths_recorded(self, corpus_stats, library_elements):
        assert len(corpus_stats.handler_lengths) == len(library_elements)

    def test_probabilities_normalize(self, corpus_stats):
        probs = corpus_stats.probabilities("stmt_kinds")
        assert abs(sum(probs.values()) - 1.0) < 1e-9

    def test_state_kinds_cover_library(self, corpus_stats):
        assert corpus_stats.state_kinds["scalar"] > 0
        assert corpus_stats.state_kinds["array"] > 0
        assert corpus_stats.state_kinds["hashmap"] > 0


class TestGenerator:
    def test_deterministic_under_seed(self, corpus_stats):
        a = ClickGen(corpus_stats, seed=9).element("x")
        b = ClickGen(corpus_stats, seed=9).element("x")
        assert [n.kind for n in walk_element(a)] == [
            n.kind for n in walk_element(b)
        ]

    def test_all_generated_elements_lower_and_verify(self, corpus_stats):
        gen = ClickGen(corpus_stats, seed=5)
        for element in gen.elements(15):
            verify_module(lower_element(element))

    def test_generated_elements_are_interpretable(self, corpus_stats):
        gen = ClickGen(corpus_stats, seed=6)
        spec = WorkloadSpec(name="t", n_flows=20, n_packets=40)
        trace = generate_trace(spec, seed=0)
        for element in gen.elements(10):
            interp = Interpreter(lower_element(element))
            interp.run_trace(trace)
            assert interp.profile.packets == 40

    def test_generated_diversity(self, corpus_stats):
        gen = ClickGen(corpus_stats, seed=1)
        shapes = set()
        for element in gen.elements(20):
            module = lower_element(element)
            ann = annotate_module(module)
            shapes.add((len(module.handler.blocks), ann.n_compute))
        assert len(shapes) >= 15  # programs are not clones

    def test_some_programs_are_stateful(self, corpus_stats):
        gen = ClickGen(corpus_stats, seed=2)
        stateful = sum(1 for el in gen.elements(20) if el.is_stateful)
        assert 3 <= stateful <= 20


def _instruction_distribution(modules, vocab_order):
    counts = Counter()
    for module in modules:
        annotate_module(module)
        for block in module.handler.blocks:
            for token in block_tokens(block, compact=True):
                counts[token.split()[0]] += 1
    return np.array([counts.get(t, 0) + 1e-9 for t in vocab_order])


class TestTable1Fidelity:
    def test_guided_closer_than_baseline(self, library_elements, corpus_stats):
        """The Table-1 claim: the stats-guided synthesizer's compiled
        instruction distribution is closer to the real corpus than the
        distribution-unaware baseline, on multiple divergence metrics."""
        real_modules = [lower_element(el) for el in library_elements]
        guided = [
            lower_element(el)
            for el in ClickGen(corpus_stats, seed=0).elements(25)
        ]
        base = [
            lower_element(el)
            for el in ClickGen(baseline_stats(), seed=0).elements(25)
        ]
        opcodes = sorted(
            {
                token.split()[0]
                for module in real_modules
                for block in module.handler.blocks
                for token in block_tokens(block)
            }
        )
        real = _instruction_distribution(real_modules, opcodes)
        guided_dist = _instruction_distribution(guided, opcodes)
        base_dist = _instruction_distribution(base, opcodes)
        assert jensen_shannon(real, guided_dist) < jensen_shannon(real, base_dist)
        assert variational_distance(real, guided_dist) < variational_distance(
            real, base_dist
        )
