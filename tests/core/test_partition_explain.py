"""Tests for the extension modules: partial offloading (paper §6
future work) and model interpretability."""

import numpy as np
import pytest

from repro.click.elements import build_element, install_state
from repro.click.interp import Interpreter
from repro.core.explain import (
    COLOCATION_FEATURE_NAMES,
    SCALEOUT_FEATURE_NAMES,
    gbdt_feature_importance,
    render_explanations,
    svm_top_patterns,
)
from repro.core.partition import PartitionAdvisor, PCIE_CROSSING_CYCLES
from repro.core.prepare import prepare_element
from repro.ml.gbdt import GBDTRegressor
from repro.nic.machine import WorkloadCharacter
from repro.workload import generate_trace
from repro.workload.spec import WorkloadSpec


def firewall_profiled(n_packets=300, syn_fraction=0.05):
    """A firewall whose SYN slow path (ACL walk + insert) is rare —
    the canonical partial-offload candidate."""
    element = build_element("firewall")
    prepared = prepare_element(element)
    interp = Interpreter(prepared.module)
    install_state(
        interp,
        {
            "n_acl": 1,
            "acl_prefix": [0],
            "acl_mask": [0],
            "acl_action": [1],
        },
    )
    spec = WorkloadSpec(
        name="t", n_flows=30, n_packets=n_packets, syn_fraction=syn_fraction
    )
    profile = interp.run_trace(generate_trace(spec, seed=0))
    return prepared, profile


class TestPathTracking:
    def test_paths_partition_packets(self):
        prepared, profile = firewall_profiled()
        assert sum(profile.path_counts.values()) == profile.packets

    def test_distinct_paths_for_distinct_behaviour(self):
        prepared, profile = firewall_profiled()
        # Fast path (established) and slow path (SYN setup) differ.
        assert len(profile.path_counts) >= 2

    def test_paths_are_subsets_of_blocks(self):
        prepared, profile = firewall_profiled()
        names = {b.name for b in prepared.blocks}
        for path in profile.path_counts:
            assert set(path) <= names


class TestPartitionAdvisor:
    def test_full_offload_always_candidate(self):
        prepared, profile = firewall_profiled()
        advisor = PartitionAdvisor(cores=12)
        wc = WorkloadCharacter()
        best, evaluated = advisor.advise(prepared, profile, wc)
        assert any(p.is_full_offload for p in evaluated)
        assert best.throughput_mpps > 0

    def test_punt_fraction_consistency(self):
        prepared, profile = firewall_profiled(syn_fraction=0.2)
        advisor = PartitionAdvisor(cores=12)
        wc = WorkloadCharacter()
        _best, evaluated = advisor.advise(prepared, profile, wc)
        for partition in evaluated:
            assert 0.0 <= partition.punt_fraction <= 1.0
            if partition.is_full_offload:
                assert partition.punt_fraction == 0.0

    def test_punting_costs_pcie(self):
        prepared, profile = firewall_profiled(syn_fraction=0.3)
        advisor = PartitionAdvisor(cores=12)
        wc = WorkloadCharacter()
        full = advisor.evaluate(frozenset(), prepared, profile, wc)
        all_blocks = frozenset(b.name for b in prepared.blocks)
        none = advisor.evaluate(all_blocks, prepared, profile, wc)
        assert none.punt_fraction == 1.0
        # Punting everything pays the crossing on every packet.
        assert none.nic_cycles_per_pkt >= PCIE_CROSSING_CYCLES

    def test_rare_slow_path_is_puntable(self):
        """With a rare SYN slow path, some split candidate keeps most
        traffic on the NIC."""
        prepared, profile = firewall_profiled(syn_fraction=0.02)
        advisor = PartitionAdvisor(cores=12)
        wc = WorkloadCharacter()
        _best, evaluated = advisor.advise(prepared, profile, wc)
        splits = [
            p for p in evaluated
            if p.host_blocks and 0.0 < p.punt_fraction < 0.5
        ]
        assert splits, "expected a low-punt split candidate"

    def test_best_is_argmax(self):
        prepared, profile = firewall_profiled()
        advisor = PartitionAdvisor(cores=12)
        wc = WorkloadCharacter()
        best, evaluated = advisor.advise(prepared, profile, wc)
        assert best.throughput_mpps == max(
            p.throughput_mpps for p in evaluated
        )


class TestExplain:
    def test_gbdt_importances_normalized(self):
        rng = np.random.default_rng(0)
        X = rng.normal(size=(100, 4))
        y = 3 * X[:, 2] + 0.1 * rng.normal(size=100)
        model = GBDTRegressor(n_rounds=20, seed=0).fit(X, y)
        importances = gbdt_feature_importance(model, ["a", "b", "c", "d"])
        total = sum(share for _n, share in importances)
        assert total == pytest.approx(1.0)
        # The informative feature dominates.
        assert importances[0][0] == "c"
        assert importances[0][1] > 0.5

    def test_svm_top_patterns(self, trained_identifier):
        patterns = svm_top_patterns(trained_identifier, "crc", top=5)
        assert 1 <= len(patterns) <= 5
        assert all(p.confidence >= 0.9 for p in patterns)
        # Weights come back sorted descending.
        weights = [p.weight for p in patterns]
        assert weights == sorted(weights, reverse=True)

    def test_crc_explanation_mentions_bit_twiddling(self, trained_identifier):
        """Section 5.3: "a distinctive feature for CRC functions is the
        high density of bitwise operations, such as xor, and, and or,
        as well as bitshifts"."""
        patterns = svm_top_patterns(trained_identifier, "crc", top=8)
        flat = " ".join(t for p in patterns for t in p.pattern)
        assert any(op in flat for op in ("xor", "lshr", "shl", "and"))

    def test_render_report(self, trained_identifier):
        rng = np.random.default_rng(0)
        X = rng.normal(size=(60, len(SCALEOUT_FEATURE_NAMES)))
        y = X[:, 0] * 2
        model = GBDTRegressor(n_rounds=10, seed=0).fit(X, y)
        text = render_explanations(model, trained_identifier)
        assert "feature importances" in text
        assert "CRC classifier" in text

    def test_feature_name_tables_match_feature_vectors(self):
        from repro.core.colocation import NFCandidate, pair_features
        from repro.nic.isa import NICProgram

        prog = NICProgram(module_name="x")
        a = NFCandidate("a", prog, {}, 100.0, 5.0)
        b = NFCandidate("b", prog, {}, 200.0, 2.0)
        assert len(pair_features(a, b)) == len(COLOCATION_FEATURE_NAMES)
