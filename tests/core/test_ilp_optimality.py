"""ILP placement optimality: on small instances the ILP's solution
must exactly match brute-force enumeration of all assignments under
the same objective (frequency-weighted latency subject to capacities).
"""

import itertools

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.placement import PlacementProblem, solve_ilp


def _brute_force(problem: PlacementProblem):
    regions = problem.regions
    best_cost = float("inf")
    best = None
    for combo in itertools.product(regions, repeat=len(problem.names)):
        used = {}
        feasible = True
        for size, region in zip(problem.sizes, combo):
            used[region.name] = used.get(region.name, 0) + size
            if used[region.name] > region.capacity_bytes:
                feasible = False
                break
        if not feasible:
            continue
        cost = sum(
            freq * region.latency_cycles
            for freq, region in zip(problem.frequencies, combo)
        )
        if cost < best_cost:
            best_cost = cost
            best = combo
    return best, best_cost


@given(
    k=st.integers(min_value=1, max_value=4),
    seed=st.integers(min_value=0, max_value=500),
)
@settings(max_examples=30, deadline=None)
def test_ilp_matches_brute_force(k, seed):
    rng = np.random.default_rng(seed)
    # Sizes spanning "fits anywhere" to "EMEM only".
    sizes = [
        int(rng.choice([512, 8 * 1024, 48 * 1024, 600 * 1024, 8 * 2**20]))
        for _ in range(k)
    ]
    freqs = [float(rng.uniform(0.0, 10.0)) for _ in range(k)]
    problem = PlacementProblem([f"s{i}" for i in range(k)], sizes, freqs)
    _best, brute_cost = _brute_force(problem)
    solution = solve_ilp(problem)
    assert solution.expected_cost == pytest.approx(brute_cost, rel=1e-9)


def test_ilp_handles_tight_packing():
    """Three 30KB structures against a 64KB CLS: exactly two fit."""
    problem = PlacementProblem(
        ["a", "b", "c"], [30 * 1024] * 3, [5.0, 4.0, 3.0]
    )
    solution = solve_ilp(problem)
    _best, brute_cost = _brute_force(problem)
    assert solution.expected_cost == pytest.approx(brute_cost)
    in_cls = [n for n, r in solution.assignment.items() if r == "cls"]
    assert len(in_cls) == 2
    assert "c" not in in_cls  # the coldest one is displaced
