"""Training artifacts: TrainConfig, the content-addressed cache,
parallel synthesis determinism, and explicit save/load."""

from __future__ import annotations

import pickle
from dataclasses import replace

import numpy as np
import pytest

from repro.click.elements import build_element
from repro.core import (
    ArtifactCacheMiss,
    Clara,
    PredictorDataset,
    TrainConfig,
    train_cache_key,
)
from repro.core.artifacts import ArtifactCache
from repro.core.colocation import ColocationAdvisor
from repro.core.scaleout import ScaleoutAdvisor
from repro.workload.spec import WorkloadSpec

#: Smallest configuration that still exercises every learning phase.
TINY = TrainConfig(
    n_predictor_programs=6,
    n_scaleout_programs=3,
    predictor_epochs=4,
    n_negatives=6,
    scaleout_trace_packets=80,
)
SEED = 11

SPEC = WorkloadSpec(name="t", n_flows=500, packet_bytes=128,
                    zipf_alpha=1.0, udp_fraction=0.0, n_packets=120)


def _analysis_fingerprint(clara: Clara):
    analysis = clara.analyze(build_element("iplookup"), SPEC)
    return (
        analysis.report.render(),
        dict(analysis.report.predicted_compute),
    )


@pytest.fixture(scope="module")
def cache_dir(tmp_path_factory):
    return tmp_path_factory.mktemp("artifact-cache")


@pytest.fixture(scope="module")
def trained(cache_dir) -> Clara:
    """Cold training run that populates the cache."""
    return Clara(seed=SEED).train(TINY, cache="auto", cache_dir=cache_dir)


class TestArtifactCache:
    def test_cold_run_stores_artifact(self, trained, cache_dir):
        key = train_cache_key(TINY, seed=SEED, nic=trained.nic)
        assert ArtifactCache(cache_dir).path_for(key).exists()

    def test_cache_hit_is_bit_identical(self, trained, cache_dir):
        warm = Clara(seed=SEED).train(TINY, cache="auto", cache_dir=cache_dir)
        assert warm.trained
        assert warm.train_config == TINY
        assert _analysis_fingerprint(warm) == _analysis_fingerprint(trained)

    def test_require_hits_after_cold_run(self, trained, cache_dir):
        warm = Clara(seed=SEED).train(
            TINY, cache="require", cache_dir=cache_dir
        )
        assert warm.trained

    def test_require_raises_on_empty_cache(self, tmp_path):
        with pytest.raises(ArtifactCacheMiss):
            Clara(seed=SEED).train(TINY, cache="require", cache_dir=tmp_path)

    def test_key_depends_on_config_and_seed(self, trained):
        nic = trained.nic
        base = train_cache_key(TINY, seed=SEED, nic=nic)
        other_cfg = train_cache_key(
            replace(TINY, predictor_epochs=5), seed=SEED, nic=nic,
        )
        other_seed = train_cache_key(TINY, seed=SEED + 1, nic=nic)
        assert len({base, other_cfg, other_seed}) == 3

    def test_corrupt_entry_falls_back_to_retrain(self, trained, tmp_path):
        key = train_cache_key(TINY, seed=SEED, nic=trained.nic)
        store = ArtifactCache(tmp_path)
        store.path_for(key).write_bytes(b"not a pickle")
        clara = Clara(seed=SEED).train(TINY, cache="auto", cache_dir=tmp_path)
        assert clara.trained
        # The broken entry was evicted and replaced by a good one.
        assert store.load(key) is not None

    def test_version_skew_is_a_miss(self, trained, tmp_path):
        key = train_cache_key(TINY, seed=SEED, nic=trained.nic)
        path = ArtifactCache(tmp_path).path_for(key)
        path.write_bytes(pickle.dumps(
            {"format": 999, "version": "other", "state": {}}
        ))
        with pytest.raises(ArtifactCacheMiss):
            Clara(seed=SEED).train(TINY, cache="require", cache_dir=tmp_path)

    def test_bad_cache_mode_rejected(self):
        with pytest.raises(ValueError, match="cache"):
            Clara(seed=SEED).train(TINY, cache="always")


class TestSaveLoad:
    def test_explicit_save_load_round_trip(self, trained, tmp_path):
        path = trained.save(tmp_path / "clara.pkl")
        loaded = Clara.load(path)
        assert loaded.trained
        assert loaded.seed == SEED
        assert loaded.train_config == TINY
        assert _analysis_fingerprint(loaded) == _analysis_fingerprint(trained)

    def test_load_missing_file_raises(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            Clara.load(tmp_path / "nope.pkl")

    def test_state_dict_round_trips_through_pickle(self, trained):
        state = pickle.loads(pickle.dumps(trained.state_dict()))
        clone = Clara(seed=SEED).load_state_dict(state)
        assert _analysis_fingerprint(clone) == _analysis_fingerprint(trained)


class TestParallelDeterminism:
    def test_predictor_dataset_parallel_equals_serial(self):
        serial = PredictorDataset.synthesize(n_programs=8, seed=3, workers=1)
        fanout = PredictorDataset.synthesize(n_programs=8, seed=3, workers=4)
        assert fanout.sequences == serial.sequences
        assert fanout.targets == serial.targets
        assert fanout.groups == serial.groups

    def test_scaleout_samples_parallel_equals_serial(self):
        def build(workers):
            advisor = ScaleoutAdvisor(seed=5)
            return advisor.build_training_set(
                n_programs=2, trace_packets=60, workers=workers
            )

        serial, fanout = build(1), build(3)
        assert len(serial) == len(fanout)
        for a, b in zip(serial, fanout):
            assert a.program_name == b.program_name
            assert a.workload_name == b.workload_name
            assert a.optimal_cores == b.optimal_cores
            np.testing.assert_array_equal(a.features, b.features)

    def test_workers_zero_means_all_cores(self):
        dataset = PredictorDataset.synthesize(n_programs=4, seed=7, workers=0)
        assert len(dataset) > 0


class TestTrainConfigIsTheOnlyEntryPoint:
    """The pre-TrainConfig ``train(**kwargs)`` shim finished its
    deprecation cycle: the kwargs are gone, not just warned about."""

    def test_legacy_kwargs_are_rejected(self, tmp_path):
        clara = Clara(seed=SEED)
        with pytest.raises(TypeError):
            clara.train(quick=True, cache="require", cache_dir=tmp_path)

    def test_legacy_sizing_kwargs_are_rejected(self):
        with pytest.raises(TypeError):
            Clara(seed=SEED).train(n_predictor_programs=33)

    def test_from_legacy_is_gone(self):
        assert not hasattr(TrainConfig, "from_legacy")

    def test_train_config_still_accepted(self, tmp_path):
        clara = Clara(seed=SEED)
        with pytest.raises(ArtifactCacheMiss):
            clara.train(TINY, cache="require", cache_dir=tmp_path)
        assert clara.train_config == TINY


class TestRankColocations:
    def test_untrained_raises_runtime_error(self):
        with pytest.raises(RuntimeError, match="train_colocation"):
            Clara(seed=SEED).rank_colocations([])

    def test_rejects_non_candidate_pairs(self):
        clara = Clara(seed=SEED)
        clara.colocation = ColocationAdvisor(nic=clara.nic, seed=SEED)
        with pytest.raises(TypeError, match=r"candidates\[0\]"):
            clara.rank_colocations([("a", "b")])

    def test_empty_candidates_return_empty_list(self):
        clara = Clara(seed=SEED)
        clara.colocation = ColocationAdvisor(nic=clara.nic, seed=SEED)
        assert clara.rank_colocations([]) == []
