"""Program preparation and instruction-prediction tests."""

import numpy as np
import pytest

from repro.click.elements import build_element
from repro.core.predictor import (
    InstructionPredictor,
    PredictorDataset,
    histogram_dataset,
)
from repro.core.prepare import prepare_element
from repro.ml.metrics import wmape
from repro.nic.compiler import compile_module


class TestPrepare:
    def test_prepare_produces_blocks_and_tokens(self):
        prepared = prepare_element(build_element("mininat"))
        assert prepared.name == "mininat"
        assert len(prepared.blocks) == len(prepared.module.handler.blocks)
        for block in prepared.blocks:
            assert prepared.tokens[block.name]

    def test_api_set_collected(self):
        prepared = prepare_element(build_element("mininat"))
        assert "hashmap_find" in prepared.api_set
        assert "checksum_update_ip" in prepared.api_set

    def test_cfg_matches_blocks(self):
        prepared = prepare_element(build_element("firewall"))
        assert set(prepared.cfg.nodes) == {b.name for b in prepared.blocks}

    def test_helpers_inlined_before_analysis(self):
        prepared = prepare_element(build_element("cmsketch"))
        assert any(b.name.startswith("inl.") for b in prepared.module.handler.blocks)


class TestDataset:
    def test_synthesis_produces_labelled_blocks(self, small_dataset):
        assert len(small_dataset) > 50
        assert all(t >= 0 for t in small_dataset.targets)
        assert len(set(small_dataset.groups)) == 12

    def test_targets_are_compiled_compute_counts(self):
        prepared = prepare_element(build_element("aggcounter"))
        ds = PredictorDataset()
        ds.extend_from_prepared(prepared)
        program = compile_module(prepared.module)
        by_name = {b.name: b.n_compute for b in program.handler.blocks}
        for seq, target, _g in zip(ds.sequences, ds.targets, ds.groups):
            assert target in by_name.values()

    def test_split_by_group_is_disjoint(self, small_dataset):
        train, test = small_dataset.split_by_group(0.25, seed=1)
        assert set(train.groups).isdisjoint(set(test.groups))
        assert len(train) + len(test) == len(small_dataset)


class TestPredictor:
    def test_fits_and_beats_trivial_baseline(self, small_dataset, trained_predictor):
        pred = trained_predictor.predict_sequences(small_dataset.sequences)
        y = np.asarray(small_dataset.targets)
        model_wmape = wmape(y, pred)
        mean_wmape = wmape(y, np.full_like(y, y.mean()))
        assert model_wmape < mean_wmape * 0.6

    def test_predictions_nonnegative(self, small_dataset, trained_predictor):
        pred = trained_predictor.predict_sequences(small_dataset.sequences[:20])
        assert (pred >= 0).all()

    def test_chunked_prediction_of_long_blocks(self, trained_predictor):
        max_len = trained_predictor.max_len
        window = [["add i32 VAR INT"] * max_len]
        double = [["add i32 VAR INT"] * (2 * max_len)]
        p_window = trained_predictor.predict_sequences(window)[0]
        p_double = trained_predictor.predict_sequences(double)[0]
        # A block of exactly two identical windows predicts exactly the
        # sum of the two chunk predictions.
        assert p_double == pytest.approx(2.0 * p_window)

    def test_unfitted_raises(self):
        with pytest.raises(RuntimeError):
            InstructionPredictor().predict_sequences([["add i32 VAR INT"]])

    def test_analyze_emits_all_insight_classes(self, trained_predictor):
        prepared = prepare_element(build_element("udpcount"))
        report = trained_predictor.analyze(prepared)
        assert report.predicted_compute
        assert report.counted_memory
        apis = {i.subject for i in report.of_type("api")}
        assert "hashmap_find" in apis

    def test_memory_insights_match_annotation(self, trained_predictor):
        """Memory accesses are *counted*, so they must be exact
        (the paper's 96.4%-100% accuracy comes from counting)."""
        prepared = prepare_element(build_element("aggcounter"))
        report = trained_predictor.analyze(prepared)
        for block in prepared.blocks:
            assert report.counted_memory[block.name] == block.n_mem_stateful

    def test_real_nf_wmape_within_paper_band(self, trained_predictor):
        """Even the quick test-sized model must land in a sane band on
        a real NF (the full-sized model in benchmarks does better)."""
        prepared = prepare_element(build_element("aggcounter"))
        program = compile_module(prepared.module)
        gt = {b.name: b.n_compute for b in program.handler.blocks}
        pred = trained_predictor.predict_sequences(
            prepared.block_token_sequences()
        )
        y = np.array([gt[b.name] for b in prepared.blocks])
        assert wmape(y, pred) < 0.8

    def test_histogram_features_align(self, small_dataset, trained_predictor):
        X, y = histogram_dataset(trained_predictor.vocab, small_dataset)
        assert X.shape == (len(small_dataset), trained_predictor.vocab.size)
        assert len(y) == len(small_dataset)
