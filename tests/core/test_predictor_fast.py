"""Predictor serving fast paths: generator safety, chunk boundaries,
the content-addressed prediction cache, the distilled GBDT gate, and
broker == direct == cached equality.

Session fixtures (``trained_predictor``) are never mutated — every test
that attaches a cache, changes the mode, or distills works on a clone
rebuilt from ``state_dict()``.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.artifacts import ArtifactCache, PredictionCache, sequence_key
from repro.core.predictor import (
    MAX_BLOCK_LEN,
    InstructionPredictor,
    PredictorDataset,
)
from repro.errors import NotTrainedError
from repro.serve.broker import PredictBroker


def clone_of(predictor: InstructionPredictor) -> InstructionPredictor:
    return InstructionPredictor().load_state_dict(predictor.state_dict())


@pytest.fixture()
def predictor(trained_predictor):
    return clone_of(trained_predictor)


@pytest.fixture(scope="module")
def corpus():
    return PredictorDataset.synthesize(n_programs=6, seed=21).sequences


@pytest.fixture(scope="module")
def distilled_predictor(trained_predictor, small_dataset):
    """One distilled clone per module — distillation trains K-fold
    student GBDTs plus an error model, too slow to repeat per test."""
    predictor = clone_of(trained_predictor)
    predictor.distill(small_dataset)
    return predictor


class TestInputHandling:
    def test_generator_input_matches_list_input(self, predictor, corpus):
        """predict_direct used to iterate its argument twice, silently
        turning generator inputs into all-zero predictions."""
        from_list = predictor.predict_direct(corpus)
        from_gen = predictor.predict_direct(seq for seq in corpus)
        assert len(from_list) == len(corpus)
        assert np.any(from_list > 0.0)
        np.testing.assert_array_equal(from_gen, from_list)

    def test_empty_sequence_and_all_empty_batch(self, predictor):
        one = predictor.predict_direct([[]])
        assert one.shape == (1,) and np.isfinite(one).all()
        batch = predictor.predict_direct([[], [], []])
        np.testing.assert_array_equal(batch, np.repeat(one, 3))

    def test_zero_sequence_batch(self, predictor):
        assert predictor.predict_direct([]).shape == (0,)

    def test_batch_composition_is_irrelevant(self, predictor, corpus):
        full = predictor.predict_direct(corpus)
        for seq, expected in zip(corpus, full):
            np.testing.assert_array_equal(
                predictor.predict_direct([seq]), [expected]
            )


class TestChunkBoundary:
    @staticmethod
    def block(n):
        return [("add" if i % 2 else "load") for i in range(n)]

    def test_block_at_exactly_max_len_is_one_chunk(self, predictor):
        """A block of exactly ``max_len`` tokens must not grow a
        spurious empty second chunk."""
        exact = self.block(MAX_BLOCK_LEN)
        alone = predictor.predict_direct([exact])
        with_extra = predictor.predict_direct(
            [exact, self.block(3), self.block(MAX_BLOCK_LEN + 5)]
        )
        np.testing.assert_array_equal(with_extra[0], alone[0])
        # One kernel invocation, no chunk summation involved.
        from repro.ml.encoding import encode_block_ids

        ids, mask = encode_block_ids(predictor.vocab, [exact],
                                     predictor.max_len)
        assert alone[0] == predictor.model.predict_ids(ids, mask)[0]

    def test_long_block_is_sum_of_its_chunks(self, predictor):
        """Chunked summation at the boundary: batch invariance makes
        the split exactly reproducible from the standalone chunks."""
        for n in (MAX_BLOCK_LEN + 1, 2 * MAX_BLOCK_LEN,
                  2 * MAX_BLOCK_LEN + 7):
            seq = self.block(n)
            whole = predictor.predict_direct([seq])[0]
            chunks = [seq[i : i + MAX_BLOCK_LEN]
                      for i in range(0, n, MAX_BLOCK_LEN)]
            parts = predictor.predict_direct(chunks)
            assert whole == parts.sum()


class TestPredictionCache:
    def test_miss_then_hit_is_bit_identical(self, predictor, corpus):
        baseline = predictor.predict_direct(corpus)
        cache = predictor.attach_prediction_cache()
        cold = predictor.predict_direct(corpus)
        warm = predictor.predict_direct(corpus)
        np.testing.assert_array_equal(cold, baseline)
        np.testing.assert_array_equal(warm, baseline)
        assert cache.misses == len(corpus)
        assert cache.hits == len(corpus)
        assert len(cache) == len({sequence_key(s) for s in corpus})

    def test_partial_hits_mix_exactly(self, predictor, corpus):
        predictor.attach_prediction_cache()
        predictor.predict_direct(corpus[:2])  # warm a subset
        mixed = predictor.predict_direct(corpus)
        predictor.detach_prediction_cache()
        np.testing.assert_array_equal(
            mixed, predictor.predict_direct(corpus)
        )

    def test_duplicate_sequences_in_one_batch(self, predictor, corpus):
        cache = predictor.attach_prediction_cache()
        doubled = [corpus[0], corpus[0], corpus[1], corpus[0]]
        out = predictor.predict_direct(doubled)
        assert out[0] == out[1] == out[3]
        assert len(cache) == 2

    def test_detach_restores_uncached_path(self, predictor, corpus):
        predictor.attach_prediction_cache()
        predictor.detach_prediction_cache()
        assert predictor.prediction_cache is None
        assert len(predictor.predict_direct(corpus)) == len(corpus)

    def test_namespace_tracks_model_and_mode(
        self, predictor, distilled_predictor
    ):
        base = predictor.prediction_namespace()
        assert distilled_predictor.prediction_namespace() == base
        for mode in ("distilled", "auto"):
            distilled_predictor.predictor_mode = mode
        namespaces = set()
        for mode in ("lstm", "distilled", "auto"):
            distilled_predictor.predictor_mode = mode
            namespaces.add(distilled_predictor.prediction_namespace())
        distilled_predictor.predictor_mode = "lstm"
        assert len(namespaces) == 3

    def test_unfitted_predictor_cannot_attach(self):
        with pytest.raises(NotTrainedError):
            InstructionPredictor().attach_prediction_cache()

    def test_flush_and_reload_round_trip(self, predictor, corpus, tmp_path):
        store = ArtifactCache(root=tmp_path)
        cache = predictor.attach_prediction_cache(store=store)
        warm = predictor.predict_direct(corpus)
        path = cache.flush()
        assert path is not None and path.exists()
        assert cache.flush() is None  # clean cache: no rewrite

        reloaded = PredictionCache(predictor.prediction_namespace(),
                                   store=store)
        assert len(reloaded) == len(cache)
        hits = reloaded.lookup([sequence_key(s) for s in corpus])
        np.testing.assert_array_equal(np.asarray(hits, dtype=float), warm)
        assert reloaded.hits == len(corpus) and reloaded.misses == 0


class TestDistilledFastPath:
    def test_mode_validation(self, predictor):
        with pytest.raises(ValueError, match="predictor_mode"):
            predictor.predictor_mode = "turbo"

    def test_distilled_mode_without_distillation_raises(
        self, predictor, corpus
    ):
        predictor.predictor_mode = "distilled"
        with pytest.raises(NotTrainedError):
            predictor.predict_direct(corpus)

    def test_distilled_close_to_teacher(self, distilled_predictor, corpus):
        distilled_predictor.predictor_mode = "lstm"
        teacher = distilled_predictor.predict_direct(corpus)
        distilled_predictor.predictor_mode = "distilled"
        student = distilled_predictor.predict_direct(corpus)
        distilled_predictor.predictor_mode = "lstm"
        assert student.shape == teacher.shape
        assert np.all(student >= 0.0)
        denom = np.abs(teacher).sum()
        assert denom > 0.0
        assert np.abs(student - teacher).sum() / denom < 0.5

    def test_auto_falls_back_to_lstm_exactly(
        self, distilled_predictor, corpus
    ):
        """Where auto mode lacks confidence it must serve the LSTM
        answer bit-for-bit, not an approximation of it."""
        distilled_predictor.predictor_mode = "lstm"
        teacher = distilled_predictor.predict_direct(corpus)
        distilled_predictor.predictor_mode = "auto"
        served = distilled_predictor.predict_direct(corpus)
        distilled_predictor.predictor_mode = "lstm"
        exact = served == teacher
        # Single-chunk blocks gated to the LSTM are bit-identical;
        # the synthetic corpus always has some low-confidence rows.
        assert exact.any()

    def test_state_round_trip_preserves_distillation(
        self, distilled_predictor, corpus
    ):
        distilled_predictor.predictor_mode = "distilled"
        expected = distilled_predictor.predict_direct(corpus)
        distilled_predictor.predictor_mode = "lstm"
        revived = clone_of(distilled_predictor)
        assert revived.distilled is not None
        assert revived.distilled.threshold == \
            distilled_predictor.distilled.threshold
        revived.predictor_mode = "distilled"
        np.testing.assert_array_equal(
            revived.predict_direct(corpus), expected
        )


class TestBrokerEquality:
    def test_broker_batched_equals_direct_equals_cached(
        self, predictor, corpus
    ):
        direct = predictor.predict_direct(corpus)
        broker = PredictBroker.for_predictor(predictor, window_s=0.001)
        try:
            import concurrent.futures as cf

            singles = list(corpus)
            with cf.ThreadPoolExecutor(max_workers=8) as pool:
                futures = [pool.submit(predictor.predict_sequences, [seq])
                           for seq in singles]
                merged = np.concatenate([f.result() for f in futures])
            np.testing.assert_array_equal(merged, direct)

            # Layer the cache under the broker: still bit-identical.
            cache = predictor.attach_prediction_cache()
            np.testing.assert_array_equal(
                predictor.predict_sequences(corpus), direct
            )
            np.testing.assert_array_equal(
                predictor.predict_sequences(corpus), direct
            )
            assert cache.hits >= len(corpus)
        finally:
            broker.close()
        assert len(predictor.predict_sequences(corpus)) == len(corpus)
