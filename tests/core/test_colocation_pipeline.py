"""Colocation advisor (Section 4.5 / Figure 14) and end-to-end Clara
pipeline integration tests."""

import numpy as np
import pytest

from repro.click.elements import build_element
from repro.core.colocation import (
    ColocationAdvisor,
    OBJECTIVES,
    make_candidate,
    pair_features,
)
from repro.core.pipeline import Clara, TrainConfig
from repro.core.prepare import prepare_element
from repro.click.interp import Interpreter
from repro.workload import generate_trace
from repro.workload.spec import WorkloadSpec


@pytest.fixture(scope="module")
def candidate_pool():
    advisor = ColocationAdvisor(seed=2)
    pool, workload = advisor.build_candidate_pool(n_programs=10)
    return advisor, pool, workload


class TestCandidates:
    def test_pool_has_profiles(self, candidate_pool):
        _advisor, pool, _wc = candidate_pool
        # 10 generated programs plus the parametric compute/mem/ctm grid.
        assert len(pool) == 10 + 24
        for cand in pool:
            assert cand.compute_per_pkt > 0
            assert cand.arithmetic_intensity > 0

    def test_pair_features_symmetric(self, candidate_pool):
        _advisor, pool, _wc = candidate_pool
        a, b = pool[0], pool[1]
        assert np.allclose(pair_features(a, b), pair_features(b, a))

    def test_real_nf_candidate(self):
        prepared = prepare_element(build_element("mazunat"))
        interp = Interpreter(prepared.module)
        spec = WorkloadSpec(name="t", n_flows=200, n_packets=150)
        profile = interp.run_trace(generate_trace(spec, seed=0))
        cand = make_candidate(prepared, profile)
        assert cand.name == "mazunat"
        assert cand.memory_per_pkt > 0


class TestMeasurement:
    def test_losses_nonnegative(self, candidate_pool):
        advisor, pool, wc = candidate_pool
        result = advisor.measure_pair(pool[0], pool[1], wc)
        # Fixed-point convergence leaves ~1e-6 residue; losses must be
        # nonnegative up to that tolerance.
        assert result.total_throughput_loss >= -1e-4
        assert result.average_throughput_loss >= -1e-4
        assert result.total_latency_loss >= -1e-4

    def test_objective_selection(self, candidate_pool):
        advisor, pool, wc = candidate_pool
        result = advisor.measure_pair(pool[0], pool[1], wc)
        original = advisor.objective
        try:
            for objective in OBJECTIVES:
                advisor.objective = objective
                assert isinstance(advisor.pair_loss(result), float)
        finally:
            advisor.objective = original  # the fixture is shared

    def test_invalid_objective_rejected(self):
        with pytest.raises(ValueError):
            ColocationAdvisor(objective="vibes")


class TestRanking:
    def test_trained_ranker_beats_random(self, candidate_pool):
        from repro.core.colocation import ranking_accuracy

        advisor, pool, wc = candidate_pool
        advisor.fit(pool, wc, n_groups=12, group_size=4)
        rng = np.random.default_rng(7)
        losses_per_query, rankings = [], []
        for _ in range(12):
            idx = rng.choice(len(pool), size=(4, 2))
            pairs = [(pool[i], pool[j]) for i, j in idx if i != j]
            if len(pairs) < 3:
                continue
            losses_per_query.append(
                [
                    advisor.pair_loss(advisor.measure_pair(a, b, wc))
                    for a, b in pairs
                ]
            )
            rankings.append(advisor.rank_pairs(pairs))
        top1 = ranking_accuracy(losses_per_query, rankings, k=1)
        assert top1 > 0.5  # well above random over ~3-4 candidates

    def test_rank_is_permutation(self, candidate_pool):
        advisor, pool, wc = candidate_pool
        advisor.fit(pool, wc, n_groups=6, group_size=4)
        pairs = [(pool[0], pool[1]), (pool[1], pool[2]), (pool[2], pool[3])]
        order = advisor.rank_pairs(pairs)
        assert sorted(order) == [0, 1, 2]


class TestClaraPipeline:
    @pytest.fixture(scope="class")
    def clara(self):
        return Clara(seed=0).train(TrainConfig.quick())

    def test_requires_training(self):
        untrained = Clara(seed=0)
        with pytest.raises(RuntimeError, match="train"):
            untrained.analyze(
                build_element("aggcounter"),
                WorkloadSpec(name="t", n_packets=50),
            )

    def test_full_analysis_has_all_insight_classes(self, clara):
        spec = WorkloadSpec(name="t", n_flows=500, n_packets=200,
                            udp_fraction=1.0)
        result = clara.analyze(build_element("udpcount"), spec)
        report = result.report
        assert report.of_type("compute")
        assert report.of_type("memory")
        assert report.of_type("api")
        assert report.of_type("scaleout")
        assert report.of_type("placement")
        assert report.suggested_cores is not None

    def test_accelerator_insight_for_cmsketch(self, clara):
        spec = WorkloadSpec(name="t", n_flows=100, n_packets=150)
        result = clara.analyze(build_element("cmsketch"), spec)
        accels = result.report.of_type("accelerator")
        assert any(a.value["accel"] == "crc" for a in accels)

    def test_port_config_applies_insights(self, clara):
        spec = WorkloadSpec(name="t", n_flows=100, n_packets=150)
        result = clara.analyze(build_element("cmsketch"), spec)
        config = clara.port_config(result)
        assert config.crc_accel_blocks  # CRC helper blocks substituted
        assert config.placement  # every stateful global placed
        assert 1 <= config.cores <= 60
        config.validate(list(result.prepared.module.globals))

    def test_checksum_accel_enabled_when_api_used(self, clara):
        spec = WorkloadSpec(name="t", n_flows=100, n_packets=100)
        result = clara.analyze(build_element("mininat"), spec)
        config = clara.port_config(result)
        assert config.use_checksum_accel

    def test_report_renders(self, clara):
        spec = WorkloadSpec(name="t", n_flows=100, n_packets=100)
        result = clara.analyze(build_element("aggcounter"), spec)
        text = result.report.render()
        assert "aggcounter" in text
        assert "[scaleout]" in text

    def test_clara_port_beats_naive_port(self, clara):
        """The headline claim: applying Clara's insights improves
        ported performance over the naive port."""
        from repro.nic.compiler import compile_module
        from repro.nic.port import PortConfig

        spec = WorkloadSpec(name="t", n_flows=2000, n_packets=250,
                            udp_fraction=1.0)
        result = clara.analyze(
            build_element("udpcount", flow_entries=262_144), spec
        )
        config = clara.port_config(result)
        freq = result.block_freq
        naive_prog = compile_module(result.prepared.module, PortConfig())
        clara_prog = compile_module(result.prepared.module, config)
        naive = clara.nic.simulate(naive_prog, freq, result.workload, cores=16)
        tuned = clara.nic.simulate(clara_prog, freq, result.workload, cores=16)
        assert tuned.latency_us < naive.latency_us
        assert tuned.throughput_mpps >= naive.throughput_mpps


class TestClaraColocationFacade:
    def test_requires_colocation_training(self):
        clara = Clara(seed=0)
        with pytest.raises(RuntimeError, match="train_colocation"):
            clara.rank_colocations([])

    def test_train_and_rank(self):
        clara = Clara(seed=1)
        clara.train_colocation(n_programs=6, n_groups=8)
        assert clara.colocation is not None
        pool = clara.colocation  # advisor
        candidates, wc = pool.build_candidate_pool(n_programs=4)
        pairs = [(candidates[0], candidates[1]),
                 (candidates[2], candidates[3])]
        ranked = clara.rank_colocations(pairs)
        assert len(ranked) == 2
        assert set(map(id, (p for pair in ranked for p in pair))) <= set(
            map(id, (p for pair in pairs for p in pair))
        )
