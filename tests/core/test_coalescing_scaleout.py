"""Coalescing (Section 4.4 / Figures 13, 16) and scale-out
(Section 4.2 / Figure 11) advisor tests."""

import numpy as np
import pytest

from repro.click.elements import build_element, install_state
from repro.click.frontend import lower_element
from repro.click.interp import Interpreter
from repro.core.coalescing import CoalescingAdvisor, _partitions
from repro.core.prepare import prepare_element
from repro.core.scaleout import ScaleoutAdvisor, scaleout_features
from repro.nic.compiler import compile_module
from repro.nic.machine import NICModel, WorkloadCharacter
from repro.nic.port import PortConfig
from repro.workload import characterize, generate_trace
from repro.workload.spec import WorkloadSpec


def tcpgen_profile(n_packets=300):
    element = build_element("tcpgen")
    module = lower_element(element)
    interp = Interpreter(module)
    install_state(interp, {"sport": 80, "dport": 1234, "iss": 1000})
    spec = WorkloadSpec(name="t", n_flows=100, n_packets=n_packets)
    trace = generate_trace(spec, seed=0)
    # Make a share of the traffic hit the generator's flow so the
    # ACK-processing path executes.
    for i, p in enumerate(trace):
        if i % 2 == 0 and p.tcp is not None:
            p.tcp["th_sport"] = 1234
            p.tcp["th_dport"] = 80
            p.tcp["th_ack"] = 1001
    profile = interp.run_trace(trace)
    return element, module, profile


class TestCoalescing:
    def test_paper_clusters_recovered(self):
        """Section 5.6's concrete example, adapted to this element's
        access patterns: the ACK-processing variables send_next and
        recv_next cluster together, the indexing ports cluster
        together, and good_pkt/bad_pkt — never accessed in the same
        block — are kept apart."""
        _el, module, profile = tcpgen_profile()
        advisor = CoalescingAdvisor(seed=0)
        plan = advisor.advise(module, profile)
        assert plan.packs, "expected at least one pack"
        clusters = plan.clusters
        assert clusters["send_next"] == clusters["recv_next"]
        assert clusters["sport"] == clusters["dport"]
        assert clusters["good_pkt"] != clusters["bad_pkt"]

    def test_pack_sizes_match_member_footprint(self):
        _el, module, profile = tcpgen_profile()
        plan = CoalescingAdvisor(seed=0).advise(module, profile)
        for pack in plan.packs:
            expected = sum(
                module.globals[m].size_bytes for m in pack.variables
            )
            assert pack.access_bytes == expected
            assert pack.access_bytes <= 64

    def test_no_singleton_packs(self):
        _el, module, profile = tcpgen_profile()
        plan = CoalescingAdvisor(seed=0).advise(module, profile)
        assert all(len(p.variables) >= 2 for p in plan.packs)

    def test_stateless_nf_gets_no_packs(self):
        module = lower_element(build_element("tcpack"))
        interp = Interpreter(module)
        spec = WorkloadSpec(name="t", n_flows=10, n_packets=50)
        profile = interp.run_trace(generate_trace(spec, seed=0))
        plan = CoalescingAdvisor().advise(module, profile)
        assert plan.packs == []

    def test_packs_reduce_simulated_memory_ops(self):
        _el, module, profile = tcpgen_profile()
        plan = CoalescingAdvisor(seed=0).advise(module, profile)
        freq = {
            b: c / profile.packets for b, c in profile.block_counts.items()
        }
        model = NICModel()
        wc = WorkloadCharacter(emem_cache_hit_rate=0.2)
        naive = model.simulate(compile_module(module, PortConfig()), freq, wc, cores=8)
        packed = model.simulate(
            compile_module(module, PortConfig(packs=plan.packs)), freq, wc, cores=8
        )
        assert packed.latency_us < naive.latency_us

    def test_partitions_enumeration(self):
        parts = list(_partitions(["a", "b", "c"]))
        # Bell(3) == 5 partitions.
        canon = {
            tuple(sorted(tuple(sorted(g)) for g in p)) for p in parts
        }
        assert len(canon) == 5

    def test_expert_search_at_least_as_good(self):
        _el, module, profile = tcpgen_profile()
        advisor = CoalescingAdvisor(seed=0)
        plan = advisor.advise(module, profile)
        freq = {
            b: c / profile.packets for b, c in profile.block_counts.items()
        }
        model = NICModel()
        wc = WorkloadCharacter(emem_cache_hit_rate=0.2)

        def evaluate(packs):
            program = compile_module(module, PortConfig(packs=list(packs)))
            return model.simulate(program, freq, wc, cores=8).latency_us

        expert_packs, expert_score = CoalescingAdvisor.expert_search(
            module, profile, evaluate, top_n=5
        )
        clara_score = evaluate(plan.packs)
        # The expert sweeps only the hottest variables' groupings
        # (Section 5.8) — it beats no-packing, and lands within a few
        # percent of Clara either way (Figure 16's "remains
        # competitive" in both directions).
        assert expert_score <= evaluate([]) + 1e-9
        assert expert_score <= clara_score * 1.15
        assert clara_score <= expert_score * 1.15


class TestScaleoutFeatures:
    def test_features_shape_and_content(self):
        element = build_element("aggcounter")
        prepared = prepare_element(element)
        interp = Interpreter(prepared.module)
        spec = WorkloadSpec(name="t", n_flows=50, n_packets=100)
        profile = interp.run_trace(generate_trace(spec, seed=0))
        program = compile_module(prepared.module)
        block_compute = {b.name: float(b.n_compute) for b in program.handler.blocks}
        wc = characterize(spec)
        features = scaleout_features(prepared, block_compute, profile, wc)
        assert features.shape == (10,)
        assert features[0] > 0  # compute per packet
        assert features[1] > 0  # stateful accesses per packet
        assert 0 <= features[5] <= 1  # emem cache hit rate
        assert features[7] > 120  # estimated issue cycles include overhead
        assert features[9] > 0  # analytic core estimate


class TestScaleoutAdvisor:
    @pytest.fixture(scope="class")
    def trained_advisor(self):
        advisor = ScaleoutAdvisor(seed=1)
        advisor.build_training_set(n_programs=8, trace_packets=120)
        advisor.fit()
        return advisor

    def test_training_set_spans_intensities(self, trained_advisor):
        intensities = [s.features[4] for s in trained_advisor.samples]
        assert max(intensities) > 2 * min(intensities)

    def test_predictions_in_core_range(self, trained_advisor):
        element = build_element("mazunat")
        prepared = prepare_element(element)
        interp = Interpreter(prepared.module)
        spec = WorkloadSpec(name="t", n_flows=1000, n_packets=150)
        profile = interp.run_trace(generate_trace(spec, seed=0))
        program = compile_module(prepared.module)
        block_compute = {b.name: float(b.n_compute) for b in program.handler.blocks}
        cores = trained_advisor.predict_cores(
            prepared, block_compute, profile, characterize(spec)
        )
        assert 1 <= cores <= 60

    def test_model_beats_fixed_guess_on_training_set(self, trained_advisor):
        X = np.stack([s.features for s in trained_advisor.samples])
        y = np.array([s.optimal_cores for s in trained_advisor.samples])
        pred = trained_advisor.model.predict(X)
        model_mae = np.abs(pred - y).mean()
        fixed_mae = np.abs(y.mean() - y).mean()
        assert model_mae <= fixed_mae

    def test_measure_optimal_matches_sweep(self, trained_advisor):
        element = build_element("aggcounter")
        prepared = prepare_element(element)
        interp = Interpreter(prepared.module)
        spec = WorkloadSpec(name="t", n_flows=50, n_packets=100)
        profile = interp.run_trace(generate_trace(spec, seed=0))
        wc = characterize(spec)
        opt = trained_advisor.measure_optimal(prepared, profile, wc)
        model = trained_advisor.nic
        program = compile_module(prepared.module, PortConfig())
        freq = {b: c / profile.packets for b, c in profile.block_counts.items()}
        sweep = model.sweep_cores(program, freq, wc)
        assert opt == model.optimal_cores(sweep)

    def test_unfitted_raises(self):
        with pytest.raises(RuntimeError):
            ScaleoutAdvisor().fit()
