"""NF state placement tests (Section 4.3 / Figures 12, 15)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.placement import (
    PlacementAdvisor,
    PlacementError,
    PlacementProblem,
    expert_search,
    solve_baseline,
    solve_greedy,
    solve_ilp,
)


def problem(names, sizes, freqs):
    return PlacementProblem(list(names), list(sizes), list(freqs))


class TestIlp:
    def test_hot_small_structure_gets_fast_region(self):
        p = problem(["hot", "cold_big"], [1024, 500 * 1024 * 1024], [10.0, 0.1])
        sol = solve_ilp(p)
        assert sol.assignment["hot"] == "cls"
        assert sol.assignment["cold_big"] == "emem"

    def test_capacity_constraints_respected(self):
        # Two structures that each fit CLS but not together.
        p = problem(["a", "b"], [40 * 1024, 40 * 1024], [5.0, 4.0])
        sol = solve_ilp(p)
        regions = sorted(sol.assignment.values())
        assert regions != ["cls", "cls"]
        # The hotter one gets the faster region.
        assert sol.assignment["a"] == "cls"

    def test_oversized_structure_infeasible_in_ilp(self):
        p = problem(["huge"], [4 * 1024 * 1024 * 1024], [1.0])
        with pytest.raises(PlacementError):
            solve_ilp(p)

    def test_empty_problem(self):
        sol = solve_ilp(problem([], [], []))
        assert sol.assignment == {}
        assert sol.expected_cost == 0.0

    def test_zero_frequency_structures_yield_no_cost(self):
        p = problem(["idle"], [64], [0.0])
        sol = solve_ilp(p)
        assert sol.expected_cost == 0.0

    def test_ilp_no_worse_than_greedy(self):
        import numpy as np

        rng = np.random.default_rng(0)
        for _ in range(5):
            k = int(rng.integers(2, 7))
            sizes = (rng.integers(1, 200, size=k) * 1024).tolist()
            freqs = rng.uniform(0.0, 8.0, size=k).tolist()
            names = [f"s{i}" for i in range(k)]
            p = problem(names, sizes, freqs)
            ilp = solve_ilp(p)
            greedy = solve_greedy(p)
            assert ilp.expected_cost <= greedy.expected_cost + 1e-6

    @given(
        k=st.integers(min_value=1, max_value=5),
        seed=st.integers(min_value=0, max_value=100),
    )
    @settings(max_examples=15, deadline=None)
    def test_ilp_assignment_is_complete_and_feasible(self, k, seed):
        import numpy as np

        rng = np.random.default_rng(seed)
        sizes = (rng.integers(1, 64, size=k) * 1024).tolist()
        freqs = rng.uniform(0.0, 4.0, size=k).tolist()
        p = problem([f"s{i}" for i in range(k)], sizes, freqs)
        sol = solve_ilp(p)
        assert set(sol.assignment) == set(p.names)
        used = {}
        for name, region in sol.assignment.items():
            used[region] = used.get(region, 0) + p.sizes[p.names.index(name)]
        for region in p.regions:
            assert used.get(region.name, 0) <= region.capacity_bytes


class TestBaselineAndGreedy:
    def test_baseline_all_emem(self):
        p = problem(["a", "b"], [64, 64], [1.0, 2.0])
        sol = solve_baseline(p)
        assert set(sol.assignment.values()) == {"emem"}

    def test_ilp_beats_baseline(self):
        p = problem(["a", "b"], [64, 64], [1.0, 2.0])
        assert solve_ilp(p).expected_cost < solve_baseline(p).expected_cost

    def test_greedy_orders_by_heat_density(self):
        p = problem(["warm_big", "hot_small"], [60 * 1024, 512], [5.0, 4.0])
        sol = solve_greedy(p)
        assert sol.assignment["hot_small"] == "cls"


class TestExpertSearch:
    def test_expert_at_least_as_good_on_ilp_objective(self):
        p = problem(["a", "b", "c"], [4096, 8192, 1024], [3.0, 1.0, 5.0])
        ilp = solve_ilp(p)
        latency = {r.name: r.latency_cycles for r in p.regions}

        def objective(assignment):
            return sum(
                latency[assignment[n]] * p.frequencies[i]
                for i, n in enumerate(p.names)
            )

        best_assignment, best_cost = expert_search(p, objective)
        assert best_cost <= ilp.expected_cost + 1e-9

    def test_expert_can_beat_ilp_on_bandwidth_objective(self):
        """The Section 5.8 finding: spreading hot state across two
        regions can beat the ILP's latency-only optimum once the
        objective includes bandwidth contention."""
        p = problem(["t1", "t2"], [512 * 1024, 512 * 1024], [6.0, 6.0])
        latency = {r.name: r.latency_cycles for r in p.regions}
        bandwidth = {"cls": 2.0, "ctm": 1.2, "imem": 0.4, "emem": 0.12}

        def contention_objective(assignment):
            total = 0.0
            load = {}
            for i, name in enumerate(p.names):
                load[assignment[name]] = (
                    load.get(assignment[name], 0.0) + p.frequencies[i]
                )
            for i, name in enumerate(p.names):
                region = assignment[name]
                rho = min(load[region] / (bandwidth[region] * 10.0), 0.9)
                total += p.frequencies[i] * latency[region] / (1.0 - rho)
            return total

        ilp = solve_ilp(p)
        expert_assignment, expert_cost = expert_search(p, contention_objective)
        ilp_cost = contention_objective(ilp.assignment)
        assert expert_cost <= ilp_cost
        # The expert spreads; the ILP piles into the fastest feasible.
        assert len(set(expert_assignment.values())) >= len(
            set(ilp.assignment.values())
        )

    def test_expert_rejects_oversized_problems(self):
        p = problem(
            [f"s{i}" for i in range(10)], [64] * 10, [1.0] * 10
        )
        with pytest.raises(PlacementError, match="too large"):
            expert_search(p, lambda a: 0.0)


class TestAdvisor:
    def test_advisor_from_profile(self):
        from repro.click.elements import build_element
        from repro.click.frontend import lower_element
        from repro.click.interp import Interpreter
        from repro.workload import generate_trace
        from repro.workload.spec import WorkloadSpec

        # A production-sized flow table (multi-MB) alongside hot
        # per-packet counters: the paper's UDPCount scenario.
        module = lower_element(build_element("udpcount", flow_entries=262_144))
        interp = Interpreter(module)
        spec = WorkloadSpec(name="t", n_flows=100, n_packets=200,
                            udp_fraction=1.0)
        profile = interp.run_trace(generate_trace(spec, seed=0))
        advisor = PlacementAdvisor()
        solution = advisor.advise(module, profile)
        assert set(solution.assignment) == set(module.globals)
        # The hot per-packet counter must not land in EMEM.
        assert solution.assignment["counter"] != "emem"
        # The multi-MB flow table only fits in EMEM.
        assert solution.assignment["flow_table"] == "emem"

    def test_advisor_handles_stateless_nf(self, lowered_library):
        from repro.click.interp import ExecutionProfile

        advisor = PlacementAdvisor()
        solution = advisor.advise(
            lowered_library["anonipaddr"], ExecutionProfile()
        )
        assert solution.assignment == {}

    def test_problem_validation(self):
        with pytest.raises(ValueError):
            PlacementProblem(["a"], [0], [1.0])
        with pytest.raises(ValueError):
            PlacementProblem(["a"], [4], [-1.0])
        with pytest.raises(ValueError):
            PlacementProblem(["a", "b"], [4], [1.0, 1.0])
