"""Algorithm identification tests (paper Section 4.1 / Figure 9)."""

import numpy as np

from repro.click.elements import build_element
from repro.core.algorithms import (
    ACCEL_CLASSES,
    AlgorithmIdentifier,
    handcrafted_features,
    _crc_bitwise_element,
    _hash_negative_element,
    _lpm_linear_element,
)
from repro.core.prepare import prepare_element
from repro.ml.metrics import precision_recall


class TestCorpus:
    def test_corpus_has_all_classes(self, algorithm_corpus):
        labels = set(algorithm_corpus.labels)
        assert labels == {"crc", "lpm", "crypto", "none"}

    def test_crypto_corpus_diversity(self, algorithm_corpus):
        crypto_names = [
            n for n, l in zip(algorithm_corpus.names, algorithm_corpus.labels)
            if l == "crypto"
        ]
        assert any("md5" in n for n in crypto_names)
        assert any("aes" in n for n in crypto_names)

    def test_corpus_implementation_diversity(self, algorithm_corpus):
        crc_names = [
            n for n, l in zip(algorithm_corpus.names, algorithm_corpus.labels)
            if l == "crc"
        ]
        assert any("crctab" in n for n in crc_names)  # table-driven
        assert any("crc16" in n for n in crc_names)   # narrower width
        lpm_names = [
            n for n, l in zip(algorithm_corpus.names, algorithm_corpus.labels)
            if l == "lpm"
        ]
        assert any("lpmtrie" in n for n in lpm_names)
        assert any("lpmlin" in n for n in lpm_names)

    def test_binary_labels(self, algorithm_corpus):
        y = algorithm_corpus.binary_labels("crc")
        assert sum(y) == algorithm_corpus.labels.count("crc")


class TestFeatures:
    def test_handcrafted_features_shape(self):
        f = handcrafted_features(["xor i32 VAR VAR", "shl i32 VAR INT"])
        assert f.shape == (12,)
        assert f[0] == 0.5  # one bitop of two tokens
        assert f[1] == 0.5  # one shift

    def test_conditional_xor_feature_fires_on_crc_shape(self):
        crc_like = [
            "load i32 mem_stateless",
            "and i32 VAR INT",
            "icmp ne i32 VAR INT",
            "br_cond",
            "lshr i32 VAR INT",
            "xor i32 VAR INT",
        ]
        plain = ["add i32 VAR VAR"] * 6
        assert handcrafted_features(crc_like)[10] > 0
        assert handcrafted_features(plain)[10] == 0

    def test_masked_match_feature_fires_on_lpm_shape(self):
        lpm_like = [
            "load i32 mem_stateful",
            "shl i32 INT VAR",
            "and i32 VAR VAR",
            "load i32 mem_stateful",
            "icmp eq i32 VAR VAR",
            "br_cond",
        ]
        assert handcrafted_features(lpm_like)[11] > 0

    def test_crc_has_higher_bitop_density_than_counter(self):
        crc = prepare_element(_crc_bitwise_element("c", 0xEDB88320, 32, True, 8))
        counter = prepare_element(build_element("aggcounter"))

        def density(prepared):
            tokens = [
                t for b in prepared.module.handler.blocks
                for t in prepared.tokens[b.name]
            ]
            return handcrafted_features(tokens)[0]

        assert density(crc) > density(counter)


class TestClassification:
    def test_training_fits(self, trained_identifier, algorithm_corpus):
        predictions = trained_identifier.predict(algorithm_corpus.sequences)
        for accel in ACCEL_CLASSES:
            y_true = np.array(algorithm_corpus.binary_labels(accel))
            y_pred = np.array([1 if p == accel else 0 for p in predictions])
            pr = precision_recall(y_true, y_pred)
            assert pr["precision"] > 0.75, (accel, pr)
            assert pr["recall"] > 0.7, (accel, pr)

    def test_unseen_crc_variant_recognized(self, trained_identifier):
        # A polynomial/rounds combination not in the training corpus.
        element = _crc_bitwise_element("novel", 0x741B8CD7, 32, True, 24)
        prepared = prepare_element(element)
        tokens = [
            t for b in prepared.module.handler.blocks
            for t in prepared.tokens[b.name]
        ]
        assert trained_identifier.classify_sequence(tokens) == "crc"

    def test_unseen_lpm_variant_recognized(self, trained_identifier):
        element = _lpm_linear_element("novel_lpm", 48)
        prepared = prepare_element(element)
        tokens = [
            t for b in prepared.module.handler.blocks
            for t in prepared.tokens[b.name]
        ]
        assert trained_identifier.classify_sequence(tokens) == "lpm"

    def test_hash_function_not_misclassified_as_crc(self, trained_identifier):
        element = _hash_negative_element("fnv_test", "fnv")
        prepared = prepare_element(element)
        tokens = [
            t for b in prepared.module.handler.blocks
            for t in prepared.tokens[b.name]
        ]
        assert trained_identifier.classify_sequence(tokens) != "crc"


class TestNFIdentification:
    def test_cmsketch_crc_helper_found(self, trained_identifier):
        """The paper's example: CRC opportunities in count-min sketch."""
        prepared = prepare_element(build_element("cmsketch"))
        found = trained_identifier.identify(prepared)
        crc_regions = [r for r, (label, _b) in found.items() if label == "crc"]
        assert any("crc32_hash" in r for r in crc_regions)

    def test_wepdecap_crc_found(self, trained_identifier):
        prepared = prepare_element(build_element("wepdecap"))
        found = trained_identifier.identify(prepared)
        assert any(label == "crc" for label, _b in found.values())

    def test_iplookup_lpm_found(self, trained_identifier):
        prepared = prepare_element(build_element("iplookup"))
        found = trained_identifier.identify(prepared)
        assert any(label == "lpm" for label, _b in found.values())

    def test_stateless_header_nf_clean(self, trained_identifier):
        """tcpack has neither CRC nor LPM: no accelerator regions."""
        prepared = prepare_element(build_element("tcpack"))
        found = trained_identifier.identify(prepared)
        assert not found

    def test_identified_blocks_exist(self, trained_identifier):
        prepared = prepare_element(build_element("cmsketch"))
        block_names = {b.name for b in prepared.module.handler.blocks}
        for _region, (_label, blocks) in trained_identifier.identify(
            prepared
        ).items():
            assert set(blocks) <= block_names

    def test_regions_cover_handler(self, trained_identifier):
        """helper:* and main partition the handler; loop:* regions are
        overlapping refinements of main."""
        prepared = prepare_element(build_element("wepdecap"))
        regions = AlgorithmIdentifier.regions(prepared)
        base_blocks = [
            b
            for name, blocks in regions.items()
            for b in blocks
            if not name.startswith("loop:")
        ]
        assert sorted(base_blocks) == sorted(
            b.name for b in prepared.module.handler.blocks
        )
        handler_blocks = {b.name for b in prepared.module.handler.blocks}
        main = set(regions["main"])
        for name, blocks in regions.items():
            if name.startswith("loop:"):
                header = name.split(":", 1)[1]
                assert header in main  # loops are anchored in main...
                # ...but may span blocks inlined from helpers they call.
                assert set(blocks) <= handler_blocks
