"""SloTracker: sliding-window quantiles, error rate, degradation."""

import pytest

from repro.obs import MetricsRegistry
from repro.obs.slo import (
    SloTracker,
    get_slo_tracker,
    set_slo_tracker,
)


class TestQuantiles:
    def test_windowed_percentiles(self):
        tracker = SloTracker(window_s=60.0)
        for ms in range(1, 101):  # 1ms .. 100ms
            tracker.observe("/v1/analyze", ms / 1000.0, now=100.0)
        stats = tracker.endpoint_stats("/v1/analyze", now=100.0)
        assert stats["count"] == 100
        assert stats["p50_s"] == pytest.approx(0.050, abs=0.002)
        assert stats["p95_s"] == pytest.approx(0.095, abs=0.002)
        assert stats["p99_s"] == pytest.approx(0.099, abs=0.002)

    def test_empty_window_is_zeroed_ok(self):
        tracker = SloTracker()
        stats = tracker.endpoint_stats("/nope")
        assert stats == {
            "count": 0, "p50_s": 0.0, "p95_s": 0.0, "p99_s": 0.0,
            "error_rate": 0.0, "status": "ok",
        }

    def test_single_sample(self):
        tracker = SloTracker()
        tracker.observe("/healthz", 0.25, now=10.0)
        stats = tracker.endpoint_stats("/healthz", now=10.0)
        assert stats["p50_s"] == stats["p99_s"] == 0.25


class TestSlidingWindow:
    def test_old_samples_age_out(self):
        tracker = SloTracker(window_s=30.0)
        tracker.observe("/v1/analyze", 9.0, now=0.0)    # very slow, old
        tracker.observe("/v1/analyze", 0.01, now=100.0)
        stats = tracker.endpoint_stats("/v1/analyze", now=100.0)
        assert stats["count"] == 1
        assert stats["p99_s"] == pytest.approx(0.01)

    def test_fully_aged_endpoint_dropped_from_snapshot(self):
        tracker = SloTracker(window_s=10.0)
        tracker.observe("/old", 0.1, now=0.0)
        tracker.observe("/live", 0.1, now=100.0)
        snap = tracker.snapshot(now=100.0)
        assert list(snap["endpoints"]) == ["/live"]

    def test_window_must_be_positive(self):
        with pytest.raises(ValueError):
            SloTracker(window_s=0)


class TestDegradation:
    def test_p99_over_threshold_degrades(self):
        tracker = SloTracker(window_s=60.0, p99_threshold_s=0.5)
        for _ in range(10):
            tracker.observe("/v1/analyze", 1.0, now=5.0)
        assert tracker.endpoint_stats(
            "/v1/analyze", now=5.0)["status"] == "degraded"
        assert tracker.status(now=5.0) == "degraded"

    def test_error_rate_over_threshold_degrades(self):
        tracker = SloTracker(window_s=60.0, error_rate_threshold=0.10)
        for i in range(10):
            tracker.observe("/v1/lint", 0.01,
                            status=500 if i < 2 else 200, now=5.0)
        stats = tracker.endpoint_stats("/v1/lint", now=5.0)
        assert stats["error_rate"] == pytest.approx(0.2)
        assert stats["status"] == "degraded"

    def test_client_errors_do_not_count(self):
        tracker = SloTracker(window_s=60.0, error_rate_threshold=0.10)
        for _ in range(10):
            tracker.observe("/v1/analyze", 0.01, status=404, now=5.0)
        stats = tracker.endpoint_stats("/v1/analyze", now=5.0)
        assert stats["error_rate"] == 0.0
        assert stats["status"] == "ok"

    def test_healthy_overall_status(self):
        tracker = SloTracker(window_s=60.0, p99_threshold_s=2.0)
        tracker.observe("/healthz", 0.001, now=5.0)
        snap = tracker.snapshot(now=5.0)
        assert snap["status"] == "ok"
        assert snap["thresholds"] == {"p99_s": 2.0, "error_rate": 0.05}

    def test_one_bad_endpoint_degrades_the_whole(self):
        tracker = SloTracker(window_s=60.0, p99_threshold_s=0.1)
        tracker.observe("/fast", 0.001, now=5.0)
        tracker.observe("/slow", 9.0, now=5.0)
        snap = tracker.snapshot(now=5.0)
        assert snap["status"] == "degraded"
        assert snap["endpoints"]["/fast"]["status"] == "ok"
        assert snap["endpoints"]["/slow"]["status"] == "degraded"


class TestGaugeExport:
    def test_gauges_projected(self):
        tracker = SloTracker(window_s=60.0, p99_threshold_s=0.5)
        for _ in range(4):
            tracker.observe("/v1/analyze", 1.0, status=500, now=5.0)
        registry = MetricsRegistry()
        tracker.export_gauges(registry, now=5.0)
        exported = registry.to_dict()
        key = 'slo_latency_seconds{endpoint="/v1/analyze",quantile="p99"}'
        assert exported[key] == pytest.approx(1.0)
        assert exported['slo_error_rate{endpoint="/v1/analyze"}'] == 1.0
        assert exported['slo_window_requests{endpoint="/v1/analyze"}'] == 4
        assert exported["slo_degraded"] == 1

    def test_idle_endpoint_gauges_zeroed_after_ageout(self):
        tracker = SloTracker(window_s=60.0)
        tracker.observe("/v1/analyze", 1.0, status=500, now=5.0)
        registry = MetricsRegistry()
        tracker.export_gauges(registry, now=5.0)
        key = 'slo_latency_seconds{endpoint="/v1/analyze",quantile="p99"}'
        assert registry.to_dict()[key] == pytest.approx(1.0)
        # All samples age out of the window: the next export must zero
        # the endpoint's gauges instead of letting stale values linger.
        tracker.export_gauges(registry, now=1000.0)
        exported = registry.to_dict()
        assert exported[key] == 0.0
        assert exported['slo_error_rate{endpoint="/v1/analyze"}'] == 0.0
        assert exported['slo_window_requests{endpoint="/v1/analyze"}'] == 0
        assert exported["slo_degraded"] == 0

    def test_exported_text_passes_the_validator(self):
        from repro.obs import validate_exposition

        tracker = SloTracker()
        tracker.observe("/v1/analyze", 0.01, now=5.0)
        registry = MetricsRegistry()
        tracker.export_gauges(registry, now=5.0)
        assert validate_exposition(registry.to_prometheus()) == []


class TestDefaultTracker:
    def test_get_set_roundtrip(self):
        fresh = SloTracker()
        previous = set_slo_tracker(fresh)
        try:
            assert get_slo_tracker() is fresh
        finally:
            set_slo_tracker(previous)
        assert get_slo_tracker() is previous

    def test_reset_clears_samples(self):
        tracker = SloTracker()
        tracker.observe("/x", 0.1, now=1.0)
        tracker.reset()
        assert tracker.snapshot(now=1.0)["endpoints"] == {}
