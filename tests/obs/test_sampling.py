"""The signal-based sampling profiler: samples a busy loop, formats
collapsed stacks, and degrades to a no-op off the main thread."""

import re
import signal
import threading
import time

import pytest

from repro.obs import SamplingProfiler


def burn_cpu(seconds):
    """Spin until ``seconds`` of wall time pass (keeps the CPU busy so
    both ITIMER_PROF and ITIMER_REAL tick)."""
    deadline = time.perf_counter() + seconds
    acc = 0
    while time.perf_counter() < deadline:
        acc += sum(range(50))
    return acc


class TestSamplingProfiler:
    def test_samples_a_busy_loop(self):
        prof = SamplingProfiler(interval_s=0.001, mode="wall")
        with prof:
            burn_cpu(0.08)
        if not prof.active and prof.n_samples == 0:
            pytest.skip("itimer unavailable on this host")
        assert prof.n_samples >= 1
        # The busy loop itself must appear in some sampled stack.
        assert any(
            any(frame.endswith(":burn_cpu") for frame in stack)
            for stack in prof.counts
        )

    def test_collapsed_format(self):
        prof = SamplingProfiler(interval_s=0.001, mode="wall")
        with prof:
            burn_cpu(0.05)
        text = prof.collapsed()
        if not text:
            pytest.skip("no samples collected on this host")
        for line in text.splitlines():
            # "module:func;module:func;... COUNT"
            assert re.fullmatch(r"\S+(;\S+)* \d+", line), line
        counts = [int(line.rsplit(" ", 1)[1]) for line in text.splitlines()]
        assert counts == sorted(counts, reverse=True)
        assert sum(counts) == prof.n_samples

    def test_write_collapsed_file(self, tmp_path):
        prof = SamplingProfiler(interval_s=0.001, mode="wall")
        with prof:
            burn_cpu(0.05)
        path = tmp_path / "stacks.txt"
        prof.write(str(path))
        assert path.read_text() == prof.collapsed()

    def test_top_limits_and_orders(self):
        prof = SamplingProfiler()
        prof.counts = {("a:f",): 3, ("b:g",): 7, ("c:h",): 1}
        prof.n_samples = 11
        assert prof.top(2) == [(("b:g",), 7), (("a:f",), 3)]

    def test_stop_restores_handler(self):
        previous = signal.getsignal(signal.SIGALRM)
        prof = SamplingProfiler(interval_s=0.01, mode="wall")
        prof.start()
        prof.stop()
        assert signal.getsignal(signal.SIGALRM) == previous
        assert not prof.active

    def test_inert_off_main_thread(self):
        prof = SamplingProfiler(interval_s=0.001, mode="wall")
        result = {}

        def worker():
            prof.start()
            result["active"] = prof.active
            prof.stop()

        thread = threading.Thread(target=worker)
        thread.start()
        thread.join()
        assert result["active"] is False
        assert prof.n_samples == 0

    def test_invalid_arguments_rejected(self):
        with pytest.raises(ValueError, match="mode"):
            SamplingProfiler(mode="quantum")
        with pytest.raises(ValueError, match="interval"):
            SamplingProfiler(interval_s=0.0)

    def test_double_start_and_stop_are_idempotent(self):
        prof = SamplingProfiler(interval_s=0.01, mode="wall")
        prof.start()
        prof.start()
        assert prof.stop() is prof
        assert prof.stop() is prof
