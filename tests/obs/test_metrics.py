"""MetricsRegistry: counters, gauges, histograms, exports."""

import pytest

from repro.obs import MetricsRegistry, get_metrics, set_metrics


class TestCounters:
    def test_inc_and_to_dict(self):
        reg = MetricsRegistry()
        reg.counter("requests").inc()
        reg.counter("requests").inc(2)
        assert reg.to_dict()["requests"] == 3

    def test_labels_are_separate_series(self):
        reg = MetricsRegistry()
        reg.counter("cache", result="hit").inc()
        reg.counter("cache", result="miss").inc(4)
        exported = reg.to_dict()
        assert exported['cache{result="hit"}'] == 1
        assert exported['cache{result="miss"}'] == 4

    def test_counters_only_go_up(self):
        reg = MetricsRegistry()
        with pytest.raises(ValueError):
            reg.counter("c").inc(-1)


class TestGauges:
    def test_set_inc_dec(self):
        reg = MetricsRegistry()
        gauge = reg.gauge("depth")
        gauge.set(10)
        gauge.inc(5)
        gauge.dec(3)
        assert reg.to_dict()["depth"] == 12


class TestHistograms:
    def test_observe_buckets_cumulative(self):
        reg = MetricsRegistry()
        hist = reg.histogram("latency", buckets=(0.1, 1.0))
        for value in (0.05, 0.5, 0.5, 5.0):
            hist.observe(value)
        exported = reg.to_dict()["latency"]
        assert exported["count"] == 4
        assert exported["sum"] == pytest.approx(6.05)
        assert exported["buckets"]["le_0.1"] == 1
        assert exported["buckets"]["le_1"] == 3
        assert exported["buckets"]["le_inf"] == 4


class TestPrometheusExport:
    def test_text_format(self):
        reg = MetricsRegistry()
        reg.counter("train_runs").inc(2)
        reg.gauge("workers").set(4)
        reg.histogram("dur", buckets=(1.0,)).observe(0.5)
        text = reg.to_prometheus()
        assert "# TYPE train_runs counter" in text
        assert "train_runs 2" in text
        assert "# TYPE workers gauge" in text
        assert "workers 4" in text
        assert 'dur_bucket{le="1"} 1' in text
        assert 'dur_bucket{le="+Inf"} 1' in text
        assert "dur_sum 0.5" in text
        assert "dur_count 1" in text
        assert text.endswith("\n")

    def test_labelled_counter_line(self):
        reg = MetricsRegistry()
        reg.counter("cache", result="hit").inc()
        assert 'cache{result="hit"} 1' in reg.to_prometheus()

    def test_empty_registry(self):
        assert MetricsRegistry().to_prometheus() == ""


class TestDefaultRegistry:
    def test_get_set_roundtrip(self):
        fresh = MetricsRegistry()
        previous = set_metrics(fresh)
        try:
            assert get_metrics() is fresh
        finally:
            set_metrics(previous)
        assert get_metrics() is previous

    def test_reset(self):
        reg = MetricsRegistry()
        reg.counter("c").inc()
        reg.reset()
        assert reg.to_dict() == {}
