"""MetricsRegistry: counters, gauges, histograms, exports."""

import pytest

from repro.obs import (
    MetricsRegistry,
    get_metrics,
    set_metrics,
    validate_exposition,
)


class TestCounters:
    def test_inc_and_to_dict(self):
        reg = MetricsRegistry()
        reg.counter("requests").inc()
        reg.counter("requests").inc(2)
        assert reg.to_dict()["requests"] == 3

    def test_labels_are_separate_series(self):
        reg = MetricsRegistry()
        reg.counter("cache", result="hit").inc()
        reg.counter("cache", result="miss").inc(4)
        exported = reg.to_dict()
        assert exported['cache{result="hit"}'] == 1
        assert exported['cache{result="miss"}'] == 4

    def test_counters_only_go_up(self):
        reg = MetricsRegistry()
        with pytest.raises(ValueError):
            reg.counter("c").inc(-1)


class TestGauges:
    def test_set_inc_dec(self):
        reg = MetricsRegistry()
        gauge = reg.gauge("depth")
        gauge.set(10)
        gauge.inc(5)
        gauge.dec(3)
        assert reg.to_dict()["depth"] == 12


class TestHistograms:
    def test_observe_buckets_cumulative(self):
        reg = MetricsRegistry()
        hist = reg.histogram("latency", buckets=(0.1, 1.0))
        for value in (0.05, 0.5, 0.5, 5.0):
            hist.observe(value)
        exported = reg.to_dict()["latency"]
        assert exported["count"] == 4
        assert exported["sum"] == pytest.approx(6.05)
        assert exported["buckets"]["le_0.1"] == 1
        assert exported["buckets"]["le_1"] == 3
        assert exported["buckets"]["le_inf"] == 4


class TestPrometheusExport:
    def test_text_format(self):
        reg = MetricsRegistry()
        reg.counter("train_runs").inc(2)
        reg.gauge("workers").set(4)
        reg.histogram("dur", buckets=(1.0,)).observe(0.5)
        text = reg.to_prometheus()
        assert "# TYPE train_runs counter" in text
        assert "train_runs 2" in text
        assert "# TYPE workers gauge" in text
        assert "workers 4" in text
        assert 'dur_bucket{le="1"} 1' in text
        assert 'dur_bucket{le="+Inf"} 1' in text
        assert "dur_sum 0.5" in text
        assert "dur_count 1" in text
        assert text.endswith("\n")

    def test_labelled_counter_line(self):
        reg = MetricsRegistry()
        reg.counter("cache", result="hit").inc()
        assert 'cache{result="hit"} 1' in reg.to_prometheus()

    def test_empty_registry(self):
        assert MetricsRegistry().to_prometheus() == ""


class TestDefaultRegistry:
    def test_get_set_roundtrip(self):
        fresh = MetricsRegistry()
        previous = set_metrics(fresh)
        try:
            assert get_metrics() is fresh
        finally:
            set_metrics(previous)
        assert get_metrics() is previous

    def test_reset(self):
        reg = MetricsRegistry()
        reg.counter("c").inc()
        reg.reset()
        assert reg.to_dict() == {}


class TestLabelEscaping:
    """Regression tests for exposition escaping: backslashes, quotes,
    and newlines in label values must be escaped per the Prometheus
    text format, or scrapers reject the whole payload."""

    def test_quote_in_label_value(self):
        reg = MetricsRegistry()
        reg.counter("errs", msg='he said "hi"').inc()
        assert 'errs{msg="he said \\"hi\\""} 1' in reg.to_prometheus()

    def test_backslash_in_label_value(self):
        reg = MetricsRegistry()
        reg.counter("errs", path="C:\\tmp").inc()
        assert 'errs{path="C:\\\\tmp"} 1' in reg.to_prometheus()

    def test_newline_in_label_value(self):
        reg = MetricsRegistry()
        reg.counter("errs", msg="line1\nline2").inc()
        text = reg.to_prometheus()
        assert 'errs{msg="line1\\nline2"} 1' in text
        # The raw newline must not split the sample across lines.
        assert all(
            line.startswith(("#", "errs")) for line in text.splitlines()
        )

    def test_backslash_escaped_before_quote(self):
        # A value ending in a backslash must not swallow the closing
        # quote: \ -> \\ first, then " -> \".
        reg = MetricsRegistry()
        reg.counter("errs", v='trailing\\').inc()
        assert 'errs{v="trailing\\\\"} 1' in reg.to_prometheus()

    def test_hostile_values_validate_cleanly(self):
        reg = MetricsRegistry()
        reg.counter("errs", msg='a"b\\c\nd', result="hit").inc(3)
        assert validate_exposition(reg.to_prometheus()) == []


class TestValidateExposition:
    def _populated(self):
        reg = MetricsRegistry()
        reg.counter("requests_total", endpoint="/v1/analyze").inc(7)
        reg.counter("requests_total", endpoint="/healthz").inc()
        reg.gauge("inflight").set(2)
        reg.histogram("latency_seconds", buckets=(0.1, 1.0)).observe(0.5)
        reg.counter("weird", msg='q"uote\\slash\nnewline').inc()
        return reg

    def test_populated_registry_is_valid(self):
        assert validate_exposition(self._populated().to_prometheus()) == []

    def test_histogram_suffixes_accepted(self):
        text = self._populated().to_prometheus()
        assert "latency_seconds_bucket" in text
        assert "latency_seconds_sum" in text
        assert "latency_seconds_count" in text
        assert validate_exposition(text) == []

    def test_missing_type_header_rejected(self):
        errors = validate_exposition("orphan_metric 1\n")
        assert len(errors) == 1 and "no TYPE header" in errors[0]

    def test_unescaped_quote_rejected(self):
        bad = ('# TYPE errs counter\n'
               'errs{msg="he said "hi""} 1\n')
        assert validate_exposition(bad) != []

    def test_raw_newline_in_value_rejected(self):
        bad = ('# TYPE errs counter\n'
               'errs{msg="line1\nline2"} 1\n')
        assert validate_exposition(bad) != []

    def test_bad_sample_value_rejected(self):
        bad = "# TYPE c counter\nc not-a-number\n"
        errors = validate_exposition(bad)
        assert len(errors) == 1 and "unparseable sample value" in errors[0]

    def test_malformed_type_header_rejected(self):
        assert validate_exposition("# TYPE c flavor\nc 1\n") != []

    def test_duplicate_type_header_rejected(self):
        bad = "# TYPE c counter\n# TYPE c counter\nc 1\n"
        errors = validate_exposition(bad)
        assert any("duplicate TYPE" in e for e in errors)

    def test_inf_and_scientific_values_accepted(self):
        good = ("# TYPE h histogram\n"
                'h_bucket{le="+Inf"} 3\n'
                "h_sum 1.5e-3\n"
                "h_count 3\n")
        assert validate_exposition(good) == []

    def test_help_comments_and_blank_lines_skipped(self):
        good = "# HELP c something\n\n# TYPE c counter\nc 1\n"
        assert validate_exposition(good) == []
