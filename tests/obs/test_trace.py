"""Tracer: span nesting, timing, attributes, and the disabled path."""

import threading
import time

import pytest

from repro import obs
from repro.obs.trace import NullTracer, _NULL_SPAN


class TestSpanNesting:
    def test_nested_spans_form_a_tree(self):
        tracer = obs.Tracer()
        with obs.use_tracer(tracer):
            with obs.span("outer"):
                with obs.span("inner_a"):
                    pass
                with obs.span("inner_b"):
                    with obs.span("leaf"):
                        pass
        assert [s.name for s in tracer.roots] == ["outer"]
        outer = tracer.roots[0]
        assert [c.name for c in outer.children] == ["inner_a", "inner_b"]
        assert [c.name for c in outer.children[1].children] == ["leaf"]

    def test_sibling_roots(self):
        tracer = obs.Tracer()
        with obs.use_tracer(tracer):
            with obs.span("first"):
                pass
            with obs.span("second"):
                pass
        assert [s.name for s in tracer.roots] == ["first", "second"]

    def test_iter_spans_depth_first(self):
        tracer = obs.Tracer()
        with obs.use_tracer(tracer):
            with obs.span("a"):
                with obs.span("b"):
                    pass
            with obs.span("c"):
                pass
        assert [s.name for s in tracer.iter_spans()] == ["a", "b", "c"]


class TestSpanTiming:
    def test_duration_positive_and_nested_bound(self):
        tracer = obs.Tracer()
        with obs.use_tracer(tracer):
            with obs.span("outer"):
                with obs.span("inner"):
                    time.sleep(0.01)
        outer = tracer.roots[0]
        inner = outer.children[0]
        assert inner.duration_s >= 0.01
        assert outer.duration_s >= inner.duration_s

    def test_stage_totals_aggregate_calls(self):
        tracer = obs.Tracer()
        with obs.use_tracer(tracer):
            for _ in range(3):
                with obs.span("stage"):
                    pass
        totals = tracer.stage_totals()
        assert totals["stage"]["calls"] == 3
        assert totals["stage"]["total_s"] >= 0.0


class TestSpanTimestamps:
    def test_start_ts_is_wall_clock(self):
        tracer = obs.Tracer()
        before = time.time()
        with obs.use_tracer(tracer):
            with obs.span("s"):
                pass
        after = time.time()
        span = tracer.roots[0]
        assert before <= span.start_ts <= after
        assert span.tid == threading.get_ident()

    def test_null_span_has_zero_timestamp(self):
        assert _NULL_SPAN.start_ts == 0.0
        assert _NULL_SPAN.tid == 0


class TestThreadSafety:
    def test_concurrent_threads_keep_separate_stacks(self):
        tracer = obs.Tracer()
        barrier = threading.Barrier(3)
        errors = []

        def work(name):
            try:
                with tracer.span(name):
                    barrier.wait(timeout=5)
                    # Both threads have a span open here; nesting must
                    # stay per-thread.
                    with tracer.span(f"{name}.child"):
                        time.sleep(0.001)
            except Exception as exc:  # pragma: no cover - failure path
                errors.append(exc)

        threads = [threading.Thread(target=work, args=(f"t{i}",))
                   for i in range(3)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors
        assert sorted(s.name for s in tracer.roots) == ["t0", "t1", "t2"]
        for root in tracer.roots:
            assert [c.name for c in root.children] == [f"{root.name}.child"]
            assert root.tid == root.children[0].tid

    def test_roots_from_worker_threads_join_main_forest(self):
        tracer = obs.Tracer()
        with tracer.span("main_side"):
            pass
        def worker():
            with tracer.span("worker_side"):
                pass

        thread = threading.Thread(target=worker)
        thread.start()
        thread.join()
        names = {s.name for s in tracer.roots}
        assert names == {"main_side", "worker_side"}
        tids = {s.name: s.tid for s in tracer.roots}
        assert tids["main_side"] != tids["worker_side"]


class TestSpanAttributes:
    def test_set_and_kwargs(self):
        tracer = obs.Tracer()
        with obs.use_tracer(tracer):
            with obs.span("s", mode="auto") as sp:
                sp.set("n_samples", 42)
        span = tracer.roots[0]
        assert span.attrs == {"mode": "auto", "n_samples": 42}

    def test_exception_records_error_and_propagates(self):
        tracer = obs.Tracer()
        with obs.use_tracer(tracer):
            with pytest.raises(ValueError):
                with obs.span("boom"):
                    raise ValueError("nope")
        assert tracer.roots[0].attrs["error"] == "ValueError"

    def test_to_dict_tree(self):
        tracer = obs.Tracer()
        with obs.use_tracer(tracer):
            with obs.span("outer", k="v"):
                with obs.span("inner"):
                    pass
        tree = tracer.roots[0].to_dict()
        assert tree["name"] == "outer"
        assert tree["attrs"] == {"k": "v"}
        assert tree["children"][0]["name"] == "inner"
        assert tree["duration_s"] >= 0.0


class TestDisabledTracer:
    def test_default_tracer_is_null(self):
        assert isinstance(obs.get_tracer(), NullTracer)

    def test_null_span_is_shared_noop(self):
        with obs.span("anything", k=1) as sp:
            assert sp is _NULL_SPAN
            sp.set("ignored", True)
        assert list(obs.get_tracer().iter_spans()) == []
        assert obs.get_tracer().stage_totals() == {}

    def test_use_tracer_restores_previous(self):
        before = obs.get_tracer()
        with obs.use_tracer(obs.Tracer()) as tracer:
            assert obs.get_tracer() is tracer
        assert obs.get_tracer() is before

    def test_set_tracer_returns_previous(self):
        tracer = obs.Tracer()
        previous = obs.set_tracer(tracer)
        try:
            assert obs.get_tracer() is tracer
        finally:
            obs.set_tracer(previous)

    def test_clear(self):
        tracer = obs.Tracer()
        with obs.use_tracer(tracer):
            with obs.span("s"):
                pass
        tracer.clear()
        assert tracer.roots == []


class TestSpanIds:
    def test_recorded_spans_get_unique_ids(self):
        tracer = obs.Tracer()
        with obs.use_tracer(tracer):
            with obs.span("a"):
                with obs.span("b"):
                    pass
            with obs.span("c"):
                pass
        ids = [s.span_id for s in tracer.iter_spans()]
        assert all(ids)
        assert len(set(ids)) == 3

    def test_span_id_in_to_dict_only_when_recorded(self):
        tracer = obs.Tracer()
        with obs.use_tracer(tracer):
            with obs.span("a"):
                pass
        recorded = tracer.roots[0].to_dict()
        assert recorded["span_id"] == tracer.roots[0].span_id
        # An unrecorded Span (never pushed) has no id and omits the key.
        from repro.obs.trace import Span

        assert "span_id" not in Span("loose").to_dict()

    def test_request_id_stamped_from_ambient_context(self):
        from repro.obs import RequestContext, use_request

        tracer = obs.Tracer()
        with obs.use_tracer(tracer):
            with use_request(RequestContext(request_id="rid-span")):
                with obs.span("inside"):
                    pass
            with obs.span("outside"):
                pass
        inside, outside = tracer.roots
        assert inside.attrs["request_id"] == "rid-span"
        assert "request_id" not in outside.attrs

    def test_explicit_request_id_attr_not_clobbered(self):
        from repro.obs import RequestContext, use_request

        tracer = obs.Tracer()
        with obs.use_tracer(tracer):
            with use_request(RequestContext(request_id="ambient")):
                with obs.span("s", request_id="explicit"):
                    pass
        assert tracer.roots[0].attrs["request_id"] == "explicit"

    def test_current_span_id_tracks_innermost(self):
        from repro.obs import current_span_id

        tracer = obs.Tracer()
        with obs.use_tracer(tracer):
            assert current_span_id() == ""
            with obs.span("outer") as outer:
                assert current_span_id() == outer.span_id
                with obs.span("inner") as inner:
                    assert current_span_id() == inner.span_id
                assert current_span_id() == outer.span_id
        assert current_span_id() == ""


class TestScopedTracer:
    def test_overrides_ambient_for_the_scope(self):
        from repro.obs import use_scoped_tracer

        scoped = obs.Tracer()
        before = obs.get_tracer()
        with use_scoped_tracer(scoped):
            assert obs.get_tracer() is scoped
            with obs.span("captured"):
                pass
        assert obs.get_tracer() is before
        assert [s.name for s in scoped.roots] == ["captured"]

    def test_layers_over_a_recording_global(self):
        from repro.obs import use_scoped_tracer

        global_tracer = obs.Tracer()
        scoped = obs.Tracer()
        with obs.use_tracer(global_tracer):
            with obs.span("global-1"):
                pass
            with use_scoped_tracer(scoped):
                with obs.span("scoped-1"):
                    pass
            with obs.span("global-2"):
                pass
        assert [s.name for s in global_tracer.roots] == [
            "global-1", "global-2",
        ]
        assert [s.name for s in scoped.roots] == ["scoped-1"]

    def test_threads_record_into_their_own_scopes(self):
        # The daemon's per-request isolation: two handler threads with
        # their own scoped tracers never see each other's spans.
        from repro.obs import use_scoped_tracer

        tracers = {"a": obs.Tracer(), "b": obs.Tracer()}
        barrier = threading.Barrier(2)

        def worker(key):
            with use_scoped_tracer(tracers[key]):
                barrier.wait()
                with obs.span(f"work-{key}"):
                    pass

        threads = [
            threading.Thread(target=worker, args=(key,)) for key in tracers
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert [s.name for s in tracers["a"].roots] == ["work-a"]
        assert [s.name for s in tracers["b"].roots] == ["work-b"]
