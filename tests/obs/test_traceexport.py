"""Chrome trace-event export: valid JSON, monotonic timestamps,
balanced B/E nesting, attrs preserved."""

import json
import threading
import time

from repro.obs import Tracer, to_chrome_trace, use_tracer, write_chrome_trace
from repro.obs.trace import span


def record_nested_tracer():
    """A tracer with a small span forest: two roots, one nested."""
    tracer = Tracer()
    with use_tracer(tracer):
        with span("outer", nf="aggcounter"):
            with span("inner", k=3):
                time.sleep(0.001)
            with span("inner2"):
                pass
        with span("second_root"):
            pass
    return tracer


class TestChromeTraceExport:
    def test_roundtrips_as_valid_json(self, tmp_path):
        tracer = record_nested_tracer()
        path = tmp_path / "trace.json"
        write_chrome_trace(tracer, str(path))
        payload = json.loads(path.read_text(encoding="utf-8"))
        assert isinstance(payload["traceEvents"], list)
        assert payload["displayTimeUnit"] == "ms"
        assert payload["otherData"]["format"] == "chrome-trace-event"

    def test_events_are_monotonic_and_balanced(self):
        events = to_chrome_trace(record_nested_tracer())["traceEvents"]
        # 4 spans -> 4 B + 4 E events.
        assert len(events) == 8
        ts = [event["ts"] for event in events]
        assert ts == sorted(ts)
        # Replay the stream per tid: every E must close the most
        # recently opened B of the same name (strict nesting), and the
        # stream must end with an empty stack.
        stacks = {}
        for event in events:
            assert event["ph"] in ("B", "E")
            stack = stacks.setdefault(event["tid"], [])
            if event["ph"] == "B":
                stack.append(event["name"])
            else:
                assert stack and stack[-1] == event["name"]
                stack.pop()
        assert all(not stack for stack in stacks.values())

    def test_span_names_and_attrs_preserved(self):
        events = to_chrome_trace(record_nested_tracer())["traceEvents"]
        begins = {e["name"]: e for e in events if e["ph"] == "B"}
        assert set(begins) == {"outer", "inner", "inner2", "second_root"}
        assert begins["outer"]["args"] == {"nf": "aggcounter"}
        assert begins["inner"]["args"] == {"k": 3}
        assert "args" not in begins["inner2"]
        assert all(e["cat"] == "clara" for e in events)

    def test_children_clamped_inside_parent(self):
        events = to_chrome_trace(record_nested_tracer())["traceEvents"]
        outer_b = next(e for e in events
                       if e["ph"] == "B" and e["name"] == "outer")
        outer_e = next(e for e in events
                       if e["ph"] == "E" and e["name"] == "outer")
        for name in ("inner", "inner2"):
            child_b = next(e for e in events
                           if e["ph"] == "B" and e["name"] == name)
            child_e = next(e for e in events
                           if e["ph"] == "E" and e["name"] == name)
            assert outer_b["ts"] <= child_b["ts"] <= child_e["ts"]
            assert child_e["ts"] <= outer_e["ts"]

    def test_timestamps_are_absolute_epoch_microseconds(self):
        before_us = time.time() * 1e6
        events = to_chrome_trace(record_nested_tracer())["traceEvents"]
        after_us = time.time() * 1e6
        for event in events:
            assert before_us - 1e6 <= event["ts"] <= after_us + 1e6

    def test_nonserializable_attrs_become_strings(self):
        tracer = Tracer()
        with use_tracer(tracer):
            with span("s", obj=object(), seq=(1, 2)):
                pass
        (begin, _end) = to_chrome_trace(tracer)["traceEvents"]
        assert isinstance(begin["args"]["obj"], str)
        assert begin["args"]["seq"] == [1, 2]

    def test_empty_tracer_exports_empty_list(self):
        payload = to_chrome_trace(Tracer())
        assert payload["traceEvents"] == []


class TestMultiThreadedExport:
    def test_threads_get_distinct_tids(self):
        tracer = Tracer()

        def work(name):
            with tracer.span(name):
                time.sleep(0.002)

        threads = [threading.Thread(target=work, args=(f"t{i}",))
                   for i in range(2)]
        with tracer.span("main_span"):
            pass
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        events = to_chrome_trace(tracer)["traceEvents"]
        names = {e["name"] for e in events}
        assert names == {"main_span", "t0", "t1"}
        tids = {e["name"]: e["tid"] for e in events if e["ph"] == "B"}
        # Worker spans carry their own thread ids, distinct from main.
        assert tids["t0"] != tids["main_span"]
        assert tids["t1"] != tids["main_span"]
        assert tids["t0"] != tids["t1"]
