"""The continuous-benchmarking harness: stats, comparison grading,
schema round-trip, and the regression exit-code protocol."""

import json

import pytest

from repro.errors import BENCH_EXIT_ERROR, BENCH_EXIT_WARNING, ClaraError
from repro.obs import bench


def make_run(cases, git_sha="test", repeats=5, quick=True):
    """A synthetic BenchRun from ``{name: (median_s, mad_s)}``."""
    results = [
        bench.BenchCaseResult(
            name=name, repeats=repeats, median_s=median, mad_s=mad,
            mean_s=median, min_s=median, max_s=median,
            samples_s=[median] * repeats,
        )
        for name, (median, mad) in cases.items()
    ]
    return bench.BenchRun(
        git_sha=git_sha, quick=quick, repeats=repeats, seed=0,
        created_unix=1700000000.0, host={"python": "3.x"}, results=results,
    )


class TestCaseResultStats:
    def test_median_and_mad(self):
        entry = bench.BenchCaseResult.from_samples(
            "c", [0.010, 0.012, 0.011, 0.013, 0.050]
        )
        assert entry.median_s == pytest.approx(0.012)
        # MAD of [2, 0, 1, 1, 38] ms deviations -> 1 ms: the outlier
        # does not blow up the dispersion estimate.
        assert entry.mad_s == pytest.approx(0.001)
        assert entry.min_s == pytest.approx(0.010)
        assert entry.max_s == pytest.approx(0.050)
        assert entry.repeats == 5

    def test_dict_roundtrip(self):
        entry = bench.BenchCaseResult.from_samples("c", [0.5, 0.6, 0.7])
        again = bench.BenchCaseResult.from_dict(entry.to_dict())
        assert again == entry


class TestBenchRunSchema:
    def test_json_roundtrip(self):
        run = make_run({"a": (0.01, 0.001), "b": (0.5, 0.0)})
        again = bench.BenchRun.from_json(run.to_json())
        assert again == run
        assert again.result("a").median_s == pytest.approx(0.01)
        assert again.result("nope") is None

    def test_schema_mismatch_rejected(self):
        payload = make_run({"a": (0.01, 0.0)}).to_dict()
        payload["schema"] = 99
        with pytest.raises(ClaraError, match="schema"):
            bench.BenchRun.from_dict(payload)

    def test_load_missing_file_is_clara_error(self, tmp_path):
        with pytest.raises(ClaraError, match="no bench baseline"):
            bench.BenchRun.load(tmp_path / "absent.json")

    def test_load_garbage_is_clara_error(self, tmp_path):
        path = tmp_path / "garbage.json"
        path.write_text("{not json")
        with pytest.raises(ClaraError, match="unreadable"):
            bench.BenchRun.load(path)

    def test_artifact_name_embeds_sha(self):
        assert make_run({}, git_sha="abc1234").default_artifact_name() \
            == "BENCH_abc1234.json"

    def test_unknown_case_is_clara_error(self):
        with pytest.raises(ClaraError, match="unknown bench case"):
            bench.get_case("definitely_not_a_case")

    def test_declared_suite_is_nonempty_and_resolvable(self):
        names = bench.default_case_names()
        assert "placement_ilp" in names
        assert "predictor_train" in names
        for name in names:
            assert bench.get_case(name).name == name


class TestCompareGrading:
    """threshold = max(rel * base_median, mad_k * max(MADs));
    warn above it, error above twice it, improved below minus it."""

    def compare(self, base, cur, **kwargs):
        comparison = bench.compare_runs(
            make_run(base, git_sha="old"),
            make_run(cur, git_sha="new"),
            **kwargs,
        )
        return comparison

    def grade(self, base, cur, **kwargs):
        (entry,) = self.compare(base, cur, **kwargs).entries
        return entry.grade

    def test_small_drift_is_ok(self):
        assert self.grade({"c": (1.0, 0.0)}, {"c": (1.1, 0.0)}) == "ok"

    def test_warn_between_one_and_two_thresholds(self):
        assert self.grade({"c": (1.0, 0.0)}, {"c": (1.4, 0.0)}) == "warn"

    def test_error_above_twice_threshold(self):
        assert self.grade({"c": (1.0, 0.0)}, {"c": (2.0, 0.0)}) == "error"

    def test_speedup_is_improved(self):
        assert self.grade({"c": (1.0, 0.0)}, {"c": (0.5, 0.0)}) == "improved"

    def test_mad_guard_suppresses_noise(self):
        # A 30% slowdown would warn, but either run's dispersion says
        # the measurement is that noisy -> ok, not a regression.
        assert self.grade({"c": (1.0, 0.2)}, {"c": (1.3, 0.0)}) == "ok"
        assert self.grade({"c": (1.0, 0.0)}, {"c": (1.3, 0.2)}) == "ok"

    def test_mad_guard_does_not_mask_big_regressions(self):
        assert self.grade({"c": (1.0, 0.1)}, {"c": (3.0, 0.1)}) == "error"

    def test_missing_and_new_do_not_affect_exit(self):
        comparison = self.compare(
            {"gone": (1.0, 0.0), "kept": (1.0, 0.0)},
            {"kept": (1.0, 0.0), "added": (1.0, 0.0)},
        )
        grades = {e.name: e.grade for e in comparison.entries}
        assert grades == {"gone": "missing", "kept": "ok", "added": "new"}
        assert comparison.exit_code == 0

    def test_exit_codes(self):
        assert self.compare(
            {"c": (1.0, 0.0)}, {"c": (1.0, 0.0)}
        ).exit_code == 0
        assert self.compare(
            {"c": (1.0, 0.0)}, {"c": (1.4, 0.0)}
        ).exit_code == BENCH_EXIT_WARNING
        assert self.compare(
            {"c": (1.0, 0.0)}, {"c": (2.5, 0.0)}
        ).exit_code == BENCH_EXIT_ERROR

    def test_error_beats_warning_in_exit(self):
        comparison = self.compare(
            {"w": (1.0, 0.0), "e": (1.0, 0.0)},
            {"w": (1.4, 0.0), "e": (3.0, 0.0)},
        )
        assert comparison.n_warnings == 1
        assert comparison.n_errors == 1
        assert comparison.exit_code == BENCH_EXIT_ERROR

    def test_bad_threshold_rejected(self):
        with pytest.raises(ClaraError, match="rel_threshold"):
            self.compare({"c": (1.0, 0.0)}, {"c": (1.0, 0.0)},
                         rel_threshold=0.0)

    def test_render_mentions_verdicts(self):
        comparison = self.compare({"c": (1.0, 0.0)}, {"c": (3.0, 0.0)})
        text = comparison.render()
        assert "old -> new" in text
        assert "error" in text
        assert "1 error-grade" in text

    def test_comparison_to_dict(self):
        payload = self.compare(
            {"c": (1.0, 0.0)}, {"c": (1.4, 0.0)}
        ).to_dict()
        assert payload["kind"] == "bench_comparison"
        (entry,) = payload["entries"]
        assert entry["grade"] == "warn"
        assert entry["ratio"] == pytest.approx(1.4)


class TestInjectedSlowdown:
    """The acceptance check: a deliberately slowed stage is flagged as
    a regression via the real run_suite -> compare_runs path."""

    @pytest.fixture
    def sleepy_case(self):
        delay = {"s": 0.0}

        @bench.register_case("sleepy", "test-only injected-sleep case")
        def _sleepy(ctx):
            import time

            def run():
                if delay["s"]:
                    time.sleep(delay["s"])
                return sum(range(200))

            return run

        try:
            yield delay
        finally:
            bench._CASES.pop("sleepy", None)

    def test_injected_sleep_flags_error(self, sleepy_case):
        fast = bench.run_suite(names=["sleepy"], repeats=3, quick=True)
        sleepy_case["s"] = 0.02  # ~100x the no-op timing
        slow = bench.run_suite(names=["sleepy"], repeats=3, quick=True)
        comparison = bench.compare_runs(fast, slow)
        (entry,) = comparison.entries
        assert entry.grade == "error"
        assert comparison.exit_code == BENCH_EXIT_ERROR

    def test_same_workload_twice_is_clean(self, sleepy_case):
        # Identical sleep-bound work in both runs: the detector must
        # not cry wolf (sleep dominates, so timing is stable).
        sleepy_case["s"] = 0.005
        first = bench.run_suite(names=["sleepy"], repeats=3, quick=True)
        second = bench.run_suite(names=["sleepy"], repeats=3, quick=True)
        comparison = bench.compare_runs(first, second)
        assert comparison.exit_code == 0


class TestBenchCli:
    """``clara bench`` end to end on the cheapest real case."""

    def test_parser_args(self):
        from repro.cli import build_parser

        args = build_parser().parse_args(
            ["bench", "placement_ilp", "--quick", "--repeats", "2",
             "--no-out", "--compare", "base.json", "--rel-threshold",
             "0.5", "--mad-k", "2.0"]
        )
        assert args.command == "bench"
        assert args.cases == ["placement_ilp"]
        assert args.quick and args.no_out
        assert args.repeats == 2
        assert args.compare == "base.json"
        assert args.rel_threshold == pytest.approx(0.5)
        assert args.mad_k == pytest.approx(2.0)

    def test_list_cases(self, capsys):
        from repro.cli import main

        assert main(["bench", "--list-cases"]) == 0
        out = capsys.readouterr().out
        for name in bench.default_case_names():
            assert name in out

    def test_run_writes_artifact_and_table(self, tmp_path, capsys,
                                           monkeypatch):
        from repro.cli import main

        monkeypatch.setenv("CLARA_BENCH_SHA", "feedf00d")
        out_path = tmp_path / "bench.json"
        assert main(["bench", "coalescing_kmeans", "--quick",
                     "--repeats", "2", "--out", str(out_path)]) == 0
        table = capsys.readouterr().out
        assert "coalescing_kmeans" in table
        run = bench.BenchRun.load(out_path)
        assert run.git_sha == "feedf00d"
        assert run.result("coalescing_kmeans").repeats == 2

    def test_compare_flags_regression_with_exit_code(self, tmp_path,
                                                     capsys):
        from repro.cli import main

        # A baseline claiming the case once took ~nothing: any real
        # timing is then an error-grade regression.  mad_k=0 removes
        # the noise guard so the verdict is deterministic.
        baseline = make_run({"coalescing_kmeans": (1e-9, 0.0)})
        path = tmp_path / "baseline.json"
        path.write_text(baseline.to_json())
        code = main(["bench", "coalescing_kmeans", "--quick",
                     "--repeats", "2", "--no-out",
                     "--compare", str(path), "--mad-k", "0"])
        assert code == BENCH_EXIT_ERROR
        assert "error" in capsys.readouterr().out

    def test_compare_clean_against_generous_baseline(self, tmp_path,
                                                     capsys):
        from repro.cli import main

        # A huge baseline median: the real timing reads as improved,
        # which never affects the exit code.
        baseline = make_run({"coalescing_kmeans": (1000.0, 0.0)})
        path = tmp_path / "baseline.json"
        path.write_text(baseline.to_json())
        code = main(["bench", "coalescing_kmeans", "--quick",
                     "--repeats", "2", "--no-out", "--compare",
                     str(path)])
        assert code == 0
        assert "improved" in capsys.readouterr().out

    def test_missing_baseline_is_clara_error(self, tmp_path, capsys):
        from repro.cli import main

        code = main(["bench", "coalescing_kmeans", "--quick",
                     "--repeats", "2", "--no-out", "--compare",
                     str(tmp_path / "absent.json")])
        assert code == ClaraError.exit_code
        assert "no bench baseline" in capsys.readouterr().err

    def test_json_output_parses(self, capsys):
        from repro.cli import main

        assert main(["bench", "coalescing_kmeans", "--quick",
                     "--repeats", "2", "--no-out", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["kind"] == "bench_run"
        assert payload["schema"] == bench.BENCH_SCHEMA
        (entry,) = payload["results"]
        assert entry["name"] == "coalescing_kmeans"
