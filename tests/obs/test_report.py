"""RunReport: collection from a tracer, JSON round-trip, rendering."""

import pytest

from repro import obs
from repro.obs import RUN_REPORT_SCHEMA, RunReport


def _traced_run():
    tracer = obs.Tracer()
    metrics = obs.MetricsRegistry()
    with obs.use_tracer(tracer):
        with obs.span("train", cache_mode="auto") as sp:
            sp.set("cache", "miss")
            with obs.span("fit_predictor"):
                pass
            with obs.span("fit_predictor"):
                pass
    metrics.counter("train_runs").inc()
    metrics.histogram("dur", buckets=(1.0,)).observe(0.2)
    return tracer, metrics


class TestCollect:
    def test_stages_and_metrics_captured(self):
        tracer, metrics = _traced_run()
        report = RunReport.collect("train", tracer, metrics, extra="x")
        assert report.command == "train"
        assert report.status == "ok"
        assert report.stages["train"]["calls"] == 1
        assert report.stages["fit_predictor"]["calls"] == 2
        assert report.metrics["train_runs"] == 1
        assert report.attributes == {"extra": "x"}
        assert report.spans[0]["attrs"]["cache"] == "miss"
        assert report.duration_s >= 0.0

    def test_collect_without_metrics(self):
        tracer, _ = _traced_run()
        assert RunReport.collect("t", tracer).metrics == {}


class TestRoundTrip:
    def test_json_roundtrip_preserves_to_dict(self):
        tracer, metrics = _traced_run()
        report = RunReport.collect("train", tracer, metrics)
        restored = RunReport.from_json(report.to_json())
        assert restored.to_dict() == report.to_dict()

    def test_schema_key_present(self):
        tracer, metrics = _traced_run()
        data = RunReport.collect("train", tracer, metrics).to_dict()
        assert data["schema"] == RUN_REPORT_SCHEMA
        assert data["kind"] == "run_report"

    def test_wrong_schema_rejected(self):
        with pytest.raises(ValueError, match="schema"):
            RunReport.from_dict({"schema": 999, "command": "x"})

    def test_non_json_attrs_stringified(self):
        tracer = obs.Tracer()
        with obs.use_tracer(tracer):
            with obs.span("s") as sp:
                sp.set("blocks", frozenset({"a"}))
                sp.set("path", object())
        report = RunReport.collect("t", tracer)
        import json

        json.loads(report.to_json())  # must not raise


class TestRenderProfile:
    def test_table_contains_stages(self):
        tracer, metrics = _traced_run()
        text = RunReport.collect("train", tracer, metrics).render_profile()
        assert "Run profile: train" in text
        assert "fit_predictor" in text
        assert "calls" in text
        assert "train_runs" in text
