"""EventJournal: the bounded ring buffer of typed serving events."""

import json
import threading

import pytest

from repro.obs import RequestContext, use_request
from repro.obs.events import (
    EVENT_KINDS,
    EVENT_SCHEMA,
    EventJournal,
    emit,
    get_journal,
    set_journal,
)


class TestEmit:
    def test_sequence_numbers_are_monotonic(self):
        journal = EventJournal()
        events = [journal.emit("request_start") for _ in range(5)]
        assert [e.seq for e in events] == [0, 1, 2, 3, 4]

    def test_unknown_kind_rejected_with_known_list(self):
        journal = EventJournal()
        with pytest.raises(ValueError, match="request_start"):
            journal.emit("made_up_kind")

    def test_data_kwargs_ride_along(self):
        journal = EventJournal()
        event = journal.emit("broker_batch", n_jobs=3, wait_s=0.01)
        assert event.data == {"n_jobs": 3, "wait_s": 0.01}

    def test_ambient_request_id_adopted(self):
        journal = EventJournal()
        with use_request(RequestContext(request_id="rid-1")):
            inside = journal.emit("cache_hit", n_keys=2)
        outside = journal.emit("cache_miss", n_keys=1)
        assert inside.request_id == "rid-1"
        assert outside.request_id is None

    def test_explicit_request_id_wins_over_ambient(self):
        journal = EventJournal()
        with use_request(RequestContext(request_id="ambient")):
            event = journal.emit("request_finish", request_id="explicit")
        assert event.request_id == "explicit"

    def test_to_dict_shape(self):
        journal = EventJournal()
        event = journal.emit("target_train", target="nfp-4000")
        d = event.to_dict()
        assert d["schema"] == EVENT_SCHEMA
        assert d["kind"] == "target_train"
        assert d["seq"] == 0
        assert d["request_id"] is None
        assert d["data"] == {"target": "nfp-4000"}
        assert isinstance(d["ts"], float)

    def test_decision_change_kind_is_reserved_and_valid(self):
        # ROADMAP item 4's re-advisor publishes these; the vocabulary
        # must already accept them.
        assert "decision_change" in EVENT_KINDS
        journal = EventJournal()
        event = journal.emit("decision_change", element="nat", before=4)
        assert event.kind == "decision_change"


class TestRingBuffer:
    def test_capacity_bounds_retention(self):
        journal = EventJournal(capacity=3)
        for _ in range(10):
            journal.emit("request_start")
        assert len(journal) == 3
        assert journal.n_emitted == 10
        assert journal.n_dropped == 7
        # The survivors are the newest three.
        assert [e.seq for e in journal.snapshot()] == [7, 8, 9]

    def test_sequence_survives_clear(self):
        journal = EventJournal()
        journal.emit("request_start")
        journal.clear()
        assert len(journal) == 0
        assert journal.emit("request_start").seq == 1

    def test_capacity_must_be_positive(self):
        with pytest.raises(ValueError):
            EventJournal(capacity=0)


class TestSnapshot:
    def _journal(self):
        journal = EventJournal()
        journal.emit("request_start", request_id="a")
        journal.emit("cache_hit", request_id="a", n_keys=1)
        journal.emit("request_start", request_id="b")
        journal.emit("request_finish", request_id="a", status=200)
        return journal

    def test_filter_by_kind(self):
        starts = self._journal().snapshot(kind="request_start")
        assert [e.request_id for e in starts] == ["a", "b"]

    def test_filter_by_request_id(self):
        mine = self._journal().snapshot(request_id="a")
        assert [e.kind for e in mine] == [
            "request_start", "cache_hit", "request_finish",
        ]

    def test_since_seq_is_exclusive(self):
        events = self._journal().snapshot(since_seq=1)
        assert [e.seq for e in events] == [2, 3]

    def test_limit_keeps_newest(self):
        events = self._journal().snapshot(limit=2)
        assert [e.seq for e in events] == [2, 3]

    def test_limit_zero_returns_nothing(self):
        # events[-0:] is the whole list; limit=0 must mean "none".
        assert self._journal().snapshot(limit=0) == []

    def test_filters_compose(self):
        events = self._journal().snapshot(request_id="a", limit=1)
        assert [e.kind for e in events] == ["request_finish"]


class TestJsonlExport:
    def test_round_trip(self, tmp_path):
        journal = EventJournal()
        journal.emit("request_start", request_id="x", endpoint="/healthz")
        journal.emit("request_finish", request_id="x", status=200)
        path = tmp_path / "events.jsonl"
        assert journal.write_jsonl(str(path)) == 2
        lines = path.read_text().splitlines()
        assert len(lines) == 2
        parsed = [json.loads(line) for line in lines]
        assert parsed == journal.to_dicts()

    def test_filters_apply_to_export(self, tmp_path):
        journal = EventJournal()
        journal.emit("request_start")
        journal.emit("cache_hit", n_keys=1)
        path = tmp_path / "hits.jsonl"
        assert journal.write_jsonl(str(path), kind="cache_hit") == 1
        assert json.loads(path.read_text())["kind"] == "cache_hit"


class TestDefaultJournal:
    def test_get_set_roundtrip(self):
        fresh = EventJournal()
        previous = set_journal(fresh)
        try:
            assert get_journal() is fresh
            emit("request_start")
            assert fresh.n_emitted == 1
        finally:
            set_journal(previous)
        assert get_journal() is previous


class TestThreadSafety:
    def test_concurrent_emitters_never_lose_or_misnumber(self):
        journal = EventJournal(capacity=10_000)
        n_threads, per_thread = 8, 200
        barrier = threading.Barrier(n_threads)

        def worker():
            barrier.wait()
            for _ in range(per_thread):
                journal.emit("request_start")

        threads = [threading.Thread(target=worker) for _ in range(n_threads)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        events = journal.snapshot()
        assert journal.n_emitted == n_threads * per_thread
        assert [e.seq for e in events] == list(range(len(events)))
