"""RequestContext: the contextvars-based correlation context."""

import logging
import threading

from repro.obs import (
    JsonFormatter,
    RequestContext,
    current_request,
    current_request_id,
    new_request_id,
    use_request,
)
from repro.obs.reqctx import MAX_REQUEST_ID_LEN, sanitize_request_id


class TestRequestContext:
    def test_default_mints_an_id(self):
        ctx = RequestContext()
        assert len(ctx.request_id) == 32
        assert ctx.request_id != RequestContext().request_id

    def test_new_request_id_is_hex(self):
        rid = new_request_id()
        int(rid, 16)  # raises if not hex
        assert len(rid) == 32

    def test_client_id_preserved(self):
        assert RequestContext(request_id="abc").request_id == "abc"


class TestSanitize:
    def test_strips_and_truncates(self):
        assert sanitize_request_id("  abc  ") == "abc"
        long = "x" * 500
        assert sanitize_request_id(long) == "x" * MAX_REQUEST_ID_LEN

    def test_control_characters_dropped(self):
        assert sanitize_request_id("a\x00b\r\nc") == "abc"

    def test_empty_and_none_mint_fresh(self):
        assert len(sanitize_request_id("")) == 32
        assert len(sanitize_request_id("   ")) == 32
        assert len(sanitize_request_id(None)) == 32


class TestAmbientContext:
    def test_none_outside_any_request(self):
        assert current_request() is None
        assert current_request_id() is None

    def test_use_request_installs_and_restores(self):
        ctx = RequestContext(request_id="rid-1")
        with use_request(ctx):
            assert current_request() is ctx
            assert current_request_id() == "rid-1"
        assert current_request_id() is None

    def test_nesting_restores_outer(self):
        with use_request(RequestContext(request_id="outer")):
            with use_request(RequestContext(request_id="inner")):
                assert current_request_id() == "inner"
            assert current_request_id() == "outer"

    def test_plain_threads_start_without_context(self):
        # The daemon relies on this isolation: each request thread sees
        # only its own context, and background threads see none.
        seen = {}

        def worker():
            seen["id"] = current_request_id()

        with use_request(RequestContext(request_id="rid-main")):
            t = threading.Thread(target=worker)
            t.start()
            t.join()
        assert seen["id"] is None

    def test_concurrent_threads_see_their_own_context(self):
        barrier = threading.Barrier(2)
        seen = {}

        def worker(rid):
            with use_request(RequestContext(request_id=rid)):
                barrier.wait()
                seen[rid] = current_request_id()

        threads = [
            threading.Thread(target=worker, args=(rid,))
            for rid in ("t-a", "t-b")
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert seen == {"t-a": "t-a", "t-b": "t-b"}


class TestLogStamping:
    def _record(self, msg="hello"):
        return logging.LogRecord(
            name="repro.test", level=logging.INFO, pathname=__file__,
            lineno=1, msg=msg, args=(), exc_info=None,
        )

    def test_json_formatter_stamps_request_id(self):
        import json

        formatter = JsonFormatter()
        with use_request(RequestContext(request_id="rid-log")):
            inside = json.loads(formatter.format(self._record()))
        outside = json.loads(formatter.format(self._record()))
        assert inside["request_id"] == "rid-log"
        assert inside["message"] == "hello"
        assert "request_id" not in outside

    def test_text_formatter_suffixes_rid(self):
        from repro.obs.logconfig import _TextFormatter

        formatter = _TextFormatter()
        with use_request(RequestContext(request_id="rid-log")):
            inside = formatter.format(self._record())
        outside = formatter.format(self._record())
        assert inside.endswith("[rid=rid-log]")
        assert "rid=" not in outside
