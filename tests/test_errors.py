"""The typed exception hierarchy and where the library raises it."""

import pytest

from repro.errors import (
    EXIT_CODES,
    ArtifactCacheMiss,
    ArtifactError,
    ClaraError,
    InvalidWorkloadError,
    NotTrainedError,
    UnknownElementError,
)


class TestHierarchy:
    def test_all_derive_from_clara_error(self):
        for cls in (UnknownElementError, InvalidWorkloadError,
                    NotTrainedError, ArtifactError, ArtifactCacheMiss):
            assert issubclass(cls, ClaraError)

    def test_builtin_compatibility(self):
        """Pre-hierarchy callers caught builtins; that must keep working."""
        assert issubclass(UnknownElementError, KeyError)
        assert issubclass(InvalidWorkloadError, ValueError)
        assert issubclass(NotTrainedError, RuntimeError)
        assert issubclass(ArtifactError, RuntimeError)
        assert issubclass(ArtifactCacheMiss, ArtifactError)

    def test_exit_codes_distinct_and_nonzero(self):
        codes = list(EXIT_CODES.values())
        assert len(set(codes)) == len(codes)
        assert all(code != 0 for code in codes)

    def test_str_is_clean_even_for_keyerror_subclass(self):
        # KeyError.__str__ would repr() the message; ours must not.
        err = UnknownElementError("unknown element 'x'")
        assert str(err) == "unknown element 'x'"

    def test_core_reexports(self):
        import repro.core as core

        assert core.ClaraError is ClaraError
        assert core.NotTrainedError is NotTrainedError
        assert core.ArtifactError is ArtifactError


class TestRaisedByLibrary:
    def test_unknown_element(self):
        from repro.click.elements import build_element

        with pytest.raises(UnknownElementError, match="unknown element"):
            build_element("not_an_element")

    def test_invalid_workload(self):
        from repro.workload.spec import WorkloadSpec

        with pytest.raises(InvalidWorkloadError):
            WorkloadSpec(n_flows=0)
        with pytest.raises(InvalidWorkloadError):
            WorkloadSpec(udp_fraction=1.5)
        with pytest.raises(InvalidWorkloadError):
            WorkloadSpec(packet_bytes=10)
        with pytest.raises(InvalidWorkloadError):
            WorkloadSpec(n_packets=0)

    def test_analyze_before_train(self):
        from repro.core import Clara
        from repro.workload.spec import WorkloadSpec

        with pytest.raises(NotTrainedError, match="train"):
            Clara(seed=0).analyze("aggcounter", WorkloadSpec(name="t"))

    def test_rank_colocations_before_training(self):
        from repro.core import Clara

        with pytest.raises(NotTrainedError, match="train_colocation"):
            Clara(seed=0).rank_colocations([])

    def test_unfitted_predictor(self):
        from repro.core.predictor import InstructionPredictor

        with pytest.raises(NotTrainedError):
            InstructionPredictor().predict_sequences([["i32.add"]])

    def test_unfitted_scaleout(self):
        from repro.core.scaleout import ScaleoutAdvisor

        with pytest.raises(NotTrainedError):
            ScaleoutAdvisor().fit()

    def test_corrupt_artifact(self, tmp_path):
        from repro.core.artifacts import load_state

        path = tmp_path / "bad.pkl"
        path.write_bytes(b"not a pickle")
        with pytest.raises(ArtifactError):
            load_state(path)

    def test_cache_require_miss(self, tmp_path):
        from repro.core import Clara, TrainConfig

        with pytest.raises(ArtifactCacheMiss):
            Clara(seed=0).train(
                TrainConfig.quick(), cache="require", cache_dir=tmp_path
            )


class TestAnalyzeAcceptsNameOrElement:
    def test_string_resolves_like_elementdef(self, clara_artifacts):
        from repro.core import Clara
        from repro.click.elements import build_element
        from repro.workload.spec import WorkloadSpec

        clara = Clara.load(clara_artifacts["artifact"])
        spec = WorkloadSpec(name="t", n_flows=64, n_packets=60)
        by_name = clara.analyze("aggcounter", spec)
        by_def = clara.analyze(build_element("aggcounter"), spec)
        assert by_name.report.to_dict() == by_def.report.to_dict()

    def test_unknown_name_raises(self, clara_artifacts):
        from repro.core import Clara
        from repro.workload.spec import WorkloadSpec

        clara = Clara.load(clara_artifacts["artifact"])
        with pytest.raises(UnknownElementError):
            clara.analyze("nope", WorkloadSpec(name="t"))


class TestHttpStatusMapping:
    """Every ClaraError maps to a meaningful HTTP status for the serve
    transport; anything else is an opaque 500."""

    def test_every_error_has_a_status(self):
        from repro.errors import HTTP_STATUSES, http_status_for

        assert HTTP_STATUSES["UnknownElementError"] == 404
        assert HTTP_STATUSES["InvalidWorkloadError"] == 400
        assert HTTP_STATUSES["NotTrainedError"] == 503
        assert HTTP_STATUSES["ArtifactError"] == 500
        assert HTTP_STATUSES["ArtifactCacheMiss"] == 503
        for cls in (UnknownElementError, InvalidWorkloadError,
                    NotTrainedError, ArtifactError, ArtifactCacheMiss):
            assert http_status_for(cls("x")) == HTTP_STATUSES[cls.__name__]

    def test_base_clara_error_is_client_fault(self):
        from repro.errors import http_status_for

        assert http_status_for(ClaraError("bad request")) == 400

    def test_non_clara_errors_are_opaque_500(self):
        from repro.errors import http_status_for

        assert http_status_for(ValueError("boom")) == 500
        assert http_status_for(KeyError("boom")) == 500
