"""Cross-module integration and property tests: invariants that span
the frontend, printer/parser, compiler, interpreter, and machine model.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.click.elements import all_elements, build_element
from repro.click.frontend import lower_element
from repro.click.interp import Interpreter
from repro.nfir import parse_module, print_module
from repro.nfir.cfg import reachable_blocks
from repro.nic.compiler import compile_module
from repro.nic.machine import NICModel, WorkloadCharacter
from repro.nic.port import CoalescePack, PortConfig
from repro.synthesis.generator import ClickGen
from repro.synthesis.stats import extract_stats
from repro.workload import generate_trace
from repro.workload.spec import WorkloadSpec


@pytest.fixture(scope="module")
def gen():
    return ClickGen(extract_stats(all_elements()), seed=123)


class TestCompilerInvariants:
    @given(seed=st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=15, deadline=None)
    def test_random_programs_compile(self, seed):
        gen = ClickGen(extract_stats(all_elements()), seed=seed)
        module = lower_element(gen.element())
        program = compile_module(module)
        assert program.handler.n_total >= 1
        for block in program.handler.blocks:
            assert block.n_compute >= 0
            assert block.n_memory >= 0

    def test_roundtrip_compiles_identically(self, gen):
        """print -> parse -> compile must produce the same assembly
        shape as compiling the original module."""
        from repro.nfir.annotate import annotate_module

        for _ in range(5):
            module = lower_element(gen.element())
            annotate_module(module)
            original = compile_module(module)
            reparsed = parse_module(print_module(module))
            annotate_module(reparsed)
            recompiled = compile_module(reparsed)
            for b1, b2 in zip(
                original.handler.blocks, recompiled.handler.blocks
            ):
                assert b1.name == b2.name
                assert b1.n_total == b2.n_total, b1.name
                assert b1.n_memory == b2.n_memory, b1.name

    def test_coalescing_never_increases_memory_ops(self, gen):
        for _ in range(5):
            element = gen.element()
            module = lower_element(element)
            scalars = [
                name for name, g in module.globals.items()
                if g.kind == "scalar"
            ]
            if len(scalars) < 2:
                continue
            pack = CoalescePack(tuple(scalars[:2]), sum(
                module.globals[s].size_bytes for s in scalars[:2]
            ))
            naive = compile_module(module, PortConfig())
            packed = compile_module(module, PortConfig(packs=[pack]))
            n = sum(b.n_memory for b in naive.handler.blocks)
            p = sum(b.n_memory for b in packed.handler.blocks)
            assert p <= n

    def test_placement_does_not_change_instruction_counts(self, gen):
        """Placement only retargets regions; the instruction stream is
        identical."""
        module = lower_element(build_element("aggcounter"))
        naive = compile_module(module, PortConfig())
        placed = compile_module(
            module,
            PortConfig(placement={g: "cls" for g in module.globals}),
        )
        assert naive.total_instructions() == placed.total_instructions()


class TestInterpreterInvariants:
    @given(seed=st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=10, deadline=None)
    def test_random_programs_interpret_safely(self, seed):
        gen = ClickGen(extract_stats(all_elements()), seed=seed)
        module = lower_element(gen.element())
        interp = Interpreter(module)
        spec = WorkloadSpec(name="t", n_flows=10, n_packets=25)
        profile = interp.run_trace(generate_trace(spec, seed=seed))
        assert profile.packets == 25
        # Entry executes exactly once per packet.
        assert profile.block_counts[module.handler.entry.name] == 25

    def test_executed_blocks_are_reachable(self, gen):
        module = lower_element(gen.element())
        interp = Interpreter(module)
        spec = WorkloadSpec(name="t", n_flows=10, n_packets=40)
        interp.run_trace(generate_trace(spec, seed=1))
        reachable = reachable_blocks(module.handler)
        executed = {
            b for b, c in interp.profile.block_counts.items() if c > 0
        }
        assert executed <= reachable

    def test_interpreter_deterministic(self, gen):
        element = gen.element()
        module = lower_element(element)
        spec = WorkloadSpec(name="t", n_flows=10, n_packets=30)
        a = Interpreter(module, seed=3)
        b = Interpreter(module, seed=3)
        a.run_trace(generate_trace(spec, seed=5))
        b.run_trace(generate_trace(spec, seed=5))
        assert a.profile.block_counts == b.profile.block_counts
        assert a.profile.global_block_access == b.profile.global_block_access


class TestEndToEndPerformancePipeline:
    def test_profile_compile_simulate_closes(self):
        """The canonical pipeline — profile on host, compile, simulate —
        runs for every library element without errors and produces
        physically sensible numbers."""
        from repro.click.elements import (
            ELEMENT_BUILDERS,
            initial_state,
            install_state,
        )

        model = NICModel()
        wc = WorkloadCharacter()
        spec = WorkloadSpec(name="t", n_flows=100, n_packets=60,
                            udp_fraction=0.3)
        for name in sorted(ELEMENT_BUILDERS):
            element = build_element(name)
            module = lower_element(element)
            interp = Interpreter(module)
            install_state(interp, initial_state(element))
            profile = interp.run_trace(generate_trace(spec, seed=0))
            freq = {
                b: c / profile.packets
                for b, c in profile.block_counts.items()
            }
            perf = model.simulate(
                compile_module(module), freq, wc, cores=10
            )
            assert 0.0 < perf.throughput_mpps <= model.line_rate_pps(
                wc.packet_bytes
            ) / 1e6 + 1e-9, name
            assert 0.0 < perf.latency_us < 10_000.0, name
