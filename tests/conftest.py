"""Shared fixtures.

Expensive artifacts (trained models, corpora) are session-scoped and
sized for seconds-not-minutes; benchmarks use full-size counterparts.
"""

from __future__ import annotations

import pytest

from repro.click.elements import all_elements
from repro.click.frontend import lower_element
from repro.core.algorithms import AlgorithmIdentifier, build_algorithm_corpus
from repro.core.predictor import InstructionPredictor, PredictorDataset
from repro.workload.spec import WorkloadSpec


@pytest.fixture(scope="session")
def library_elements():
    return all_elements()


@pytest.fixture(scope="session")
def lowered_library(library_elements):
    return {el.name: lower_element(el) for el in library_elements}


@pytest.fixture(scope="session")
def small_dataset():
    """A small synthesized predictor dataset (shared across tests)."""
    return PredictorDataset.synthesize(n_programs=12, seed=7)


@pytest.fixture(scope="session")
def trained_predictor(small_dataset):
    return InstructionPredictor(epochs=10, seed=7).fit(small_dataset)


@pytest.fixture(scope="session")
def algorithm_corpus():
    return build_algorithm_corpus(seed=3, n_negatives=12)


@pytest.fixture(scope="session")
def trained_identifier(algorithm_corpus):
    return AlgorithmIdentifier(seed=3).fit(algorithm_corpus)


@pytest.fixture()
def tiny_workload():
    return WorkloadSpec(name="tiny", n_flows=64, n_packets=120)


@pytest.fixture(scope="session")
def clara_artifacts(tmp_path_factory):
    """A warm artifact cache plus a saved artifact for CLI tests.

    The cache entry matches what ``_obtain_clara`` computes for
    ``TrainConfig.quick()`` at seed 0, so CLI commands pointed at the
    directory (via ``REPRO_CLARA_CACHE``) load instead of retraining.
    """
    from repro.core import Clara, TrainConfig

    cache_dir = tmp_path_factory.mktemp("clara-cache")
    clara = Clara(seed=0).train(
        TrainConfig.quick(), cache="auto", cache_dir=cache_dir
    )
    artifact = cache_dir / "clara-saved.pkl"
    clara.save(artifact)
    return {"cache_dir": cache_dir, "artifact": artifact}
